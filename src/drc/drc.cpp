#include "drc/drc.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "netlist/topo.h"

namespace statsizer::drc {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

namespace {

/// Deterministic short rendering of a physical quantity (platform-stable for
/// the value ranges DRC prints; diagnostics must not vary run to run).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// True for node kinds that are correct without a cell binding.
bool expects_no_cell(GateFunc func) {
  return func == GateFunc::kInput || func == GateFunc::kConst0 || func == GateFunc::kConst1;
}

void attribute(Diagnostic& d, const bench_format::Provenance* prov) {
  if (prov == nullptr) return;
  d.file = prov->file;
  d.line = prov->line(d.object);
}

/// Joins up to @p limit names; appends ", ..." when truncated.
std::string name_list(const std::vector<std::string>& names, std::size_t limit) {
  std::string out;
  for (std::size_t i = 0; i < names.size() && i < limit; ++i) {
    if (!out.empty()) out += ", ";
    out += names[i];
  }
  if (names.size() > limit) out += ", ...";
  return out;
}

// ---- structural rules -------------------------------------------------------

/// Kahn completion check; on failure appends one kCombinationalCycle
/// diagnostic whose witness is the loop in signal-flow order (deterministic:
/// the walk starts at the lowest unresolved id and always follows the first
/// unresolved fanin). Returns true when the netlist is acyclic.
bool check_cycle(const Netlist& nl, const bench_format::Provenance* prov,
                 DrcReport& report) {
  const std::size_t n = nl.node_count();
  std::vector<std::uint32_t> pending(n);
  std::vector<GateId> ready;
  std::size_t done = 0;
  for (GateId id = 0; id < n; ++id) {
    pending[id] = static_cast<std::uint32_t>(nl.gate(id).fanins.size());
    if (pending[id] == 0) ready.push_back(id);
  }
  for (std::size_t head = 0; head < ready.size(); ++head) {
    ++done;
    for (const GateId consumer : nl.gate(ready[head]).fanouts) {
      if (--pending[consumer] == 0) ready.push_back(consumer);
    }
  }
  if (done == n) return true;

  // Every unresolved node has at least one unresolved fanin, so walking
  // first-unresolved-fanin pointers from the lowest unresolved id must
  // revisit a node; the revisit closes the loop. The walk follows fanins
  // (against signal flow), so the witness is the reversed slice.
  GateId start = netlist::kNoGate;
  for (GateId id = 0; id < n && start == netlist::kNoGate; ++id) {
    if (pending[id] != 0) start = id;
  }
  std::vector<GateId> walk;
  std::unordered_map<GateId, std::size_t> pos;
  GateId at = start;
  while (!pos.contains(at)) {
    pos.emplace(at, walk.size());
    walk.push_back(at);
    for (const GateId f : nl.gate(at).fanins) {
      if (pending[f] != 0) {
        at = f;
        break;
      }
    }
  }
  Diagnostic d;
  d.rule = Rule::kCombinationalCycle;
  d.severity = Severity::kError;
  for (std::size_t i = walk.size(); i > pos[at]; --i) {
    d.witness.push_back(nl.gate(walk[i - 1]).name);
  }
  d.witness.push_back(d.witness.front());
  d.object = d.witness.front();
  d.message = "combinational cycle through '" + d.object + "' (" +
              std::to_string(d.witness.size() - 1) + " nodes)";
  attribute(d, prov);
  report.diagnostics.push_back(std::move(d));
  return false;
}

void check_multi_driven(const Netlist& nl, const bench_format::Provenance* prov,
                        DrcReport& report) {
  std::unordered_map<std::string, std::vector<GateId>> drivers_of;
  for (const netlist::Output& o : nl.outputs()) drivers_of[o.name].push_back(o.driver);
  for (const netlist::Output& o : nl.outputs()) {
    const auto it = drivers_of.find(o.name);
    if (it == drivers_of.end() || it->second.size() < 2) continue;
    Diagnostic d;
    d.rule = Rule::kMultiDrivenNet;
    d.severity = Severity::kError;
    d.object = o.name;
    d.message = "primary output '" + o.name + "' declared " +
                std::to_string(it->second.size()) + " times";
    bool distinct = false;
    for (const GateId g : it->second) {
      d.witness.push_back(nl.gate(g).name);
      distinct = distinct || g != it->second.front();
    }
    if (distinct) d.message += " with different drivers";
    attribute(d, prov);
    report.diagnostics.push_back(std::move(d));
    drivers_of.erase(it);  // one finding per name
  }
}

void check_connectivity(const Netlist& nl, const DrcOptions& options,
                        const bench_format::Provenance* prov, DrcReport& report) {
  const std::vector<bool> observable = netlist::observable_mask(nl);
  std::vector<std::string> cone;  // dead nodes that still feed something
  for (GateId id = 0; id < nl.node_count(); ++id) {
    const netlist::Gate& g = nl.gate(id);
    const bool sink = g.fanouts.empty() && g.po_count == 0;
    if (sink) {
      Diagnostic d;
      d.rule = nl.is_input(id) ? Rule::kFloatingInput : Rule::kDanglingOutput;
      d.severity = Severity::kWarning;
      d.object = g.name;
      d.message = nl.is_input(id)
                      ? "primary input '" + g.name + "' drives nothing"
                      : "output of gate '" + g.name + "' (" +
                            std::string(netlist::func_name(g.func)) + ") feeds nothing";
      attribute(d, prov);
      report.diagnostics.push_back(std::move(d));
    } else if (!observable[id]) {
      cone.push_back(g.name);
    }
  }
  if (!cone.empty()) {
    Diagnostic d;
    d.rule = Rule::kDeadCone;
    d.severity = Severity::kWarning;
    d.message = std::to_string(cone.size()) +
                " node(s) feed only logic unreachable from any primary output: " +
                name_list(cone, options.max_witness);
    d.object = cone.front();
    cone.resize(std::min(cone.size(), options.max_witness));
    d.witness = std::move(cone);
    attribute(d, prov);
    report.diagnostics.push_back(std::move(d));
  }
}

void append_structural(const Netlist& nl, const DrcOptions& options,
                       const bench_format::Provenance* prov, DrcReport& report) {
  check_cycle(nl, prov, report);
  check_multi_driven(nl, prov, report);
  check_connectivity(nl, options, prov, report);
}

// ---- binding rules ----------------------------------------------------------

/// Validates every gate's (cell_group, size_index) binding against the
/// library. Returns true when clean enough for the electrical rules (which
/// dereference the bound cells).
bool append_binding(const sta::TimingContext& ctx,
                    const bench_format::Provenance* prov, DrcReport& report) {
  const Netlist& nl = ctx.netlist();
  const liberty::Library& lib = ctx.library();
  bool clean = true;
  for (GateId id = 0; id < nl.node_count(); ++id) {
    const netlist::Gate& g = nl.gate(id);
    if (expects_no_cell(g.func)) continue;
    std::string what;
    if (g.cell_group == netlist::kUnmapped) {
      what = "gate '" + g.name + "' (" + std::string(netlist::func_name(g.func)) +
             ") has no cell binding";
    } else if (g.cell_group >= lib.groups().size()) {
      what = "gate '" + g.name + "' bound to nonexistent cell group #" +
             std::to_string(g.cell_group);
    } else {
      const liberty::CellGroup& grp = lib.group(g.cell_group);
      if (g.size_index >= grp.size_count()) {
        what = "gate '" + g.name + "' size index " + std::to_string(g.size_index) +
               " out of range for " + grp.base_name() + " (" +
               std::to_string(grp.size_count()) + " sizes)";
      } else if (grp.func() != g.func || grp.arity() != g.fanins.size()) {
        what = "gate '" + g.name + "' (" + std::string(netlist::func_name(g.func)) + "/" +
               std::to_string(g.fanins.size()) + " inputs) bound to incompatible cell " +
               grp.base_name();
      }
    }
    if (what.empty()) continue;
    clean = false;
    Diagnostic d;
    d.rule = Rule::kUnknownCell;
    d.severity = Severity::kError;
    d.object = g.name;
    d.message = std::move(what);
    attribute(d, prov);
    report.diagnostics.push_back(std::move(d));
  }
  return clean;
}

// ---- electrical rules -------------------------------------------------------

/// Per-gate findings of the parallel sweep. Each wavefront worker writes only
/// its own gate's slot; the serial compaction appends slots in GateId order,
/// so the report is bitwise independent of thread count and chunking.
struct ElectricalSlot {
  std::vector<Diagnostic> findings;
};

void electrical_body(const sta::TimingContext& ctx, const DrcOptions& options,
                     GateId id, ElectricalSlot& slot) {
  const Netlist& nl = ctx.netlist();
  const netlist::Gate& g = nl.gate(id);

  const std::size_t fanout = g.fanouts.size() + g.po_count;
  if (fanout > options.max_fanout) {
    Diagnostic d;
    d.rule = Rule::kFanoutExceeded;
    d.severity = Severity::kWarning;
    d.object = g.name;
    d.message = "'" + g.name + "' drives " + std::to_string(fanout) +
                " sinks (limit " + std::to_string(options.max_fanout) + ")";
    for (std::size_t i = 0; i < g.fanouts.size() && i < options.max_witness; ++i) {
      d.witness.push_back(nl.gate(g.fanouts[i]).name);
    }
    slot.findings.push_back(std::move(d));
  }

  if (!ctx.has_cell(id)) return;
  const liberty::Cell& cell = ctx.cell(id);

  const double max_cap = cell.output().max_capacitance_ff;
  if (max_cap > 0.0 && ctx.load_ff(id) > options.load_limit_scale * max_cap) {
    Diagnostic d;
    d.rule = Rule::kLoadExceedsLimit;
    d.severity = Severity::kWarning;
    d.object = g.name;
    d.message = "'" + g.name + "' (" + cell.name + ") drives " + num(ctx.load_ff(id)) +
                " fF, over " + num(options.load_limit_scale) + "x its max_capacitance of " +
                num(max_cap) + " fF";
    // Witness: the heaviest consumers, by descending pin cap then GateId.
    std::vector<std::pair<double, GateId>> heavy;
    for (const GateId c : g.fanouts) {
      double cap = 0.0;
      if (ctx.has_cell(c)) {
        const netlist::Gate& cg = nl.gate(c);
        for (std::size_t i = 0; i < cg.fanins.size(); ++i) {
          if (cg.fanins[i] == id) {
            cap = ctx.cell(c).input_cap_ff(i);
            break;
          }
        }
      }
      heavy.emplace_back(cap, c);
    }
    std::sort(heavy.begin(), heavy.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (std::size_t i = 0; i < heavy.size() && i < options.max_witness; ++i) {
      d.witness.push_back(nl.gate(heavy[i].second).name + " (" + num(heavy[i].first) +
                          " fF)");
    }
    slot.findings.push_back(std::move(d));
  }

  // Slew limit: the binding pin is the tightest max_transition among this
  // gate's own output pin and every consumer input pin it drives.
  double limit = cell.output().max_transition_ps;
  std::string limiter = cell.name + "." + cell.output().name;
  for (const GateId c : g.fanouts) {
    if (!ctx.has_cell(c)) continue;
    const netlist::Gate& cg = nl.gate(c);
    const liberty::Cell& consumer = ctx.cell(c);
    const auto pins = consumer.input_pins();
    for (std::size_t i = 0; i < cg.fanins.size() && i < pins.size(); ++i) {
      if (cg.fanins[i] != id) continue;
      const double pin_limit = pins[i]->max_transition_ps;
      if (pin_limit > 0.0 && (limit <= 0.0 || pin_limit < limit)) {
        limit = pin_limit;
        limiter = nl.gate(c).name + "/" + consumer.name + "." + pins[i]->name;
      }
    }
  }
  if (limit > 0.0 && ctx.slew_ps(id) > limit) {
    Diagnostic d;
    d.rule = Rule::kSlewExceedsLimit;
    d.severity = Severity::kWarning;
    d.object = g.name;
    d.message = "'" + g.name + "' output slew " + num(ctx.slew_ps(id)) +
                " ps exceeds max_transition " + num(limit) + " ps at " + limiter;
    d.witness.push_back(limiter);
    slot.findings.push_back(std::move(d));
  }
}

void append_electrical(const sta::TimingContext& ctx, const DrcOptions& options,
                       const bench_format::Provenance* prov, DrcReport& report) {
  const Netlist& nl = ctx.netlist();
  std::vector<ElectricalSlot> slots(nl.node_count());
  const netlist::Levelization& lv = ctx.levelization();
  for (std::size_t l = 0; l < lv.level_count(); ++l) {
    const std::span<const GateId> level = lv.level(l);
    sta::run_wavefront_level(level, level.size(), options.min_level_width_for_parallel,
                             /*chunk=*/64, options.threads, [&](const GateId id) {
                               electrical_body(ctx, options, id, slots[id]);
                             });
  }
  for (GateId id = 0; id < nl.node_count(); ++id) {
    for (Diagnostic& d : slots[id].findings) {
      attribute(d, prov);
      report.diagnostics.push_back(std::move(d));
    }
  }
}

// ---- SDC coverage -----------------------------------------------------------

void sdc_port_rules(const Netlist& nl, const bench_format::Sdc& sdc,
                    const DrcOptions& options, const std::string& sdc_file,
                    DrcReport& report) {
  const auto located = [&](Rule rule, Severity sev, std::string object,
                           std::string message, int line) {
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.object = std::move(object);
    d.message = std::move(message);
    d.file = sdc_file;
    d.line = line;
    report.diagnostics.push_back(std::move(d));
  };

  if (sdc.clock_period_ps.has_value() && *sdc.clock_period_ps <= 0.0) {
    const std::string clk = sdc.clock_name.empty() ? "clock" : sdc.clock_name;
    located(Rule::kNonPositiveClock, Severity::kError, clk,
            "create_clock period " + num(*sdc.clock_period_ps) + " ps is not positive",
            sdc.clock_line);
  }

  std::unordered_map<std::string, bool> po_names;  // name -> covered
  for (const netlist::Output& o : nl.outputs()) po_names.emplace(o.name, false);
  std::vector<bool> pi_covered(nl.node_count(), false);

  for (const bench_format::SdcPortDelay& e : sdc.input_delays) {
    if (e.all_ports) {
      for (const GateId id : nl.inputs()) pi_covered[id] = true;
      continue;
    }
    for (const std::string& port : e.ports) {
      const GateId id = nl.find(port);
      if (id == netlist::kNoGate || !nl.is_input(id)) {
        located(Rule::kUnknownConstraintPort, Severity::kError, port,
                "set_input_delay names '" + port + "', not a primary input", e.line);
      } else {
        pi_covered[id] = true;
      }
    }
  }
  for (const bench_format::SdcPortDelay& e : sdc.output_delays) {
    if (e.all_ports) {
      // lint-ok: unordered-iter order-insensitive bulk mark; no output assembled
      for (auto& [_, covered] : po_names) covered = true;
      continue;
    }
    for (const std::string& port : e.ports) {
      const auto it = po_names.find(port);
      if (it == po_names.end()) {
        located(Rule::kUnknownConstraintPort, Severity::kError, port,
                "set_output_delay names '" + port + "', not a primary output", e.line);
      } else {
        it->second = true;
      }
    }
  }

  // Coverage warnings only make sense once the design is constrained at all:
  // a clock defines the required-time frame the arrivals feed.
  if (sdc.clock_period_ps.has_value() && *sdc.clock_period_ps > 0.0) {
    std::vector<std::string> uncovered;
    for (const GateId id : nl.inputs()) {
      if (!pi_covered[id]) uncovered.push_back(nl.gate(id).name);
    }
    if (!uncovered.empty()) {
      Diagnostic d;
      d.rule = Rule::kUnconstrainedInput;
      d.severity = Severity::kWarning;
      d.object = uncovered.front();
      d.message = std::to_string(uncovered.size()) +
                  " primary input(s) have no set_input_delay: " +
                  name_list(uncovered, options.max_witness);
      uncovered.resize(std::min(uncovered.size(), options.max_witness));
      d.witness = std::move(uncovered);
      d.file = sdc_file;
      report.diagnostics.push_back(std::move(d));
    }
  } else if (!sdc.clock_period_ps.has_value()) {
    Diagnostic d;
    d.rule = Rule::kUnconstrainedOutput;
    d.severity = Severity::kWarning;
    d.message = "no create_clock: primary outputs have no required time";
    d.file = sdc_file;
    report.diagnostics.push_back(std::move(d));
  }
}

/// Without the parsed SDC only the dense vectors remain; screen them for the
/// same intent. Empty TimingConstraints mean "analysis unconstrained by
/// design" and yield no findings.
void constraint_rules(const Netlist& nl, const sta::TimingConstraints& c,
                      DrcReport& report) {
  if (c.empty()) return;
  if (c.clock_period_ps.has_value() && *c.clock_period_ps <= 0.0) {
    Diagnostic d;
    d.rule = Rule::kNonPositiveClock;
    d.severity = Severity::kError;
    d.object = "clock";
    d.message = "clock period " + num(*c.clock_period_ps) + " ps is not positive";
    report.diagnostics.push_back(std::move(d));
  }
  if (c.clock_period_ps.has_value() && *c.clock_period_ps > 0.0 &&
      c.input_arrival_ps.empty() && !nl.inputs().empty()) {
    Diagnostic d;
    d.rule = Rule::kUnconstrainedInput;
    d.severity = Severity::kWarning;
    d.message = "clock is set but no primary input has an arrival time";
    report.diagnostics.push_back(std::move(d));
  }
  if (!c.clock_period_ps.has_value()) {
    Diagnostic d;
    d.rule = Rule::kUnconstrainedOutput;
    d.severity = Severity::kWarning;
    d.message = "port delays are set but no clock defines a required time";
    report.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

std::string_view rule_id(Rule rule) {
  switch (rule) {
    case Rule::kCombinationalCycle: return "combinational-cycle";
    case Rule::kFloatingInput: return "floating-input";
    case Rule::kMultiDrivenNet: return "multi-driven-net";
    case Rule::kDanglingOutput: return "dangling-output";
    case Rule::kDeadCone: return "dead-cone";
    case Rule::kUnknownCell: return "unknown-cell";
    case Rule::kFanoutExceeded: return "fanout-exceeded";
    case Rule::kLoadExceedsLimit: return "load-exceeds-limit";
    case Rule::kSlewExceedsLimit: return "slew-exceeds-limit";
    case Rule::kUnconstrainedInput: return "unconstrained-input";
    case Rule::kUnconstrainedOutput: return "unconstrained-output";
    case Rule::kUnknownConstraintPort: return "unknown-constraint-port";
    case Rule::kNonPositiveClock: return "non-positive-clock";
  }
  return "unknown";
}

std::string_view severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::size_t DrcReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t DrcReport::warnings() const { return diagnostics.size() - errors(); }

const Diagnostic* DrcReport::first_error() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

DrcReport check_netlist(const Netlist& nl, const DrcOptions& options,
                        const bench_format::Provenance* provenance) {
  DrcReport report;
  append_structural(nl, options, provenance, report);
  return report;
}

DrcReport run_drc(const sta::TimingContext& ctx, const DrcOptions& options,
                  const bench_format::Provenance* provenance,
                  const bench_format::Sdc* sdc, const std::string& sdc_file) {
  DrcReport report;
  append_structural(ctx.netlist(), options, provenance, report);
  // Electrical rules dereference the bound cells, so a broken binding must
  // stop the sweep at the binding stage.
  if (append_binding(ctx, provenance, report)) {
    append_electrical(ctx, options, provenance, report);
  }
  if (sdc != nullptr) {
    sdc_port_rules(ctx.netlist(), *sdc, options, sdc_file, report);
  } else {
    constraint_rules(ctx.netlist(), ctx.constraints(), report);
  }
  return report;
}

std::string format_text(const DrcReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    if (!d.file.empty()) {
      out += d.file;
      if (d.line > 0) out += ":" + std::to_string(d.line);
      out += ": ";
    } else if (d.line > 0) {
      out += "line " + std::to_string(d.line) + ": ";
    }
    out += severity_name(d.severity);
    out += ": [";
    out += rule_id(d.rule);
    out += "] ";
    out += d.message;
    if (!d.witness.empty()) {
      out += " (witness: ";
      for (std::size_t i = 0; i < d.witness.size(); ++i) {
        if (i > 0) out += " -> ";
        out += d.witness[i];
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

namespace {
void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string format_json(const DrcReport& report) {
  std::string out = "{\"errors\":" + std::to_string(report.errors()) +
                    ",\"warnings\":" + std::to_string(report.warnings()) +
                    ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"rule\":\"";
    out += rule_id(d.rule);
    out += "\",\"severity\":\"";
    out += severity_name(d.severity);
    out += "\",\"object\":\"";
    json_escape(out, d.object);
    out += "\",\"message\":\"";
    json_escape(out, d.message);
    out += "\",\"witness\":[";
    for (std::size_t w = 0; w < d.witness.size(); ++w) {
      if (w > 0) out += ",";
      out += "\"";
      json_escape(out, d.witness[w]);
      out += "\"";
    }
    out += "],\"file\":\"";
    json_escape(out, d.file);
    out += "\",\"line\":" + std::to_string(d.line) + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace statsizer::drc
