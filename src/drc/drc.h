// Static design-rule analysis over a netlist, its library bindings, and its
// timing constraints — the preflight that runs before any sizing engine
// touches a design. Diagnostics are structured (rule id, severity, the named
// object, a witness such as the cycle path or the worst-offender fanout
// list) and, when the ingestion readers recorded provenance, attributed to
// source file:line.
//
// Two entry points:
//   * check_netlist()  — structural rules only (cycle, floating input,
//     multi-driven output, dangling output, dead cone). Needs nothing but
//     the netlist; core::Flow runs it on every load.
//   * run_drc()        — the full sweep: structural + cell-binding +
//     electrical (fanout / capacitive load / slew against the bound cells'
//     library limits at the nominal corner) + SDC coverage. Needs a
//     TimingContext snapshot.
//
// Determinism contract: the diagnostic vector is bitwise identical for any
// DrcOptions::threads. The electrical rules sweep the levelized wavefront in
// parallel but write only per-gate slots; diagnostics are compacted serially
// in GateId order. Structural, binding, and SDC rules are serial by
// construction (id order / command order).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bench_format/provenance.h"
#include "bench_format/sdc_reader.h"
#include "netlist/netlist.h"
#include "sta/graph.h"

namespace statsizer::drc {

/// Every design rule the analysis knows. Stable ids (rule_id()) are the
/// external contract: corpus markers, --lint JSON, and tests key on them.
enum class Rule : std::uint8_t {
  kCombinationalCycle,   ///< error: netlist has a combinational loop
  kFloatingInput,        ///< warning: primary input drives nothing
  kMultiDrivenNet,       ///< error: primary output name declared twice
  kDanglingOutput,       ///< warning: gate output feeds nothing
  kDeadCone,             ///< warning: logic cone unreachable from any PO
  kUnknownCell,          ///< error: gate lacks a (valid) library binding
  kFanoutExceeded,       ///< warning: fanout count above DrcOptions::max_fanout
  kLoadExceedsLimit,     ///< warning: load above scale * cell max_capacitance
  kSlewExceedsLimit,     ///< warning: nominal slew above pin max_transition
  kUnconstrainedInput,   ///< warning: PI without an SDC arrival
  kUnconstrainedOutput,  ///< warning: PO without a required time
  kUnknownConstraintPort,///< error: SDC names a port the netlist lacks
  kNonPositiveClock,     ///< error: create_clock period <= 0
};

/// Stable kebab-case identifier ("combinational-cycle", "dead-cone", ...).
[[nodiscard]] std::string_view rule_id(Rule rule);

enum class Severity : std::uint8_t { kWarning, kError };

/// "warning" / "error".
[[nodiscard]] std::string_view severity_name(Severity severity);

/// One finding. @p witness carries rule-specific evidence: the cycle path in
/// signal-flow order (first node repeated last), the heaviest load consumers,
/// the limiting slew pin, or the uncovered port list. @p file / @p line are
/// filled when ingestion provenance (or the SDC source) locates the object.
struct Diagnostic {
  Rule rule = Rule::kCombinationalCycle;
  Severity severity = Severity::kError;
  std::string object;   ///< gate / net / port name ("" for design-wide findings)
  std::string message;
  std::vector<std::string> witness;
  std::string file;
  int line = 0;

  [[nodiscard]] bool operator==(const Diagnostic&) const = default;
};

struct DrcOptions {
  /// Fanout-count bound (edges + primary outputs) per driver.
  std::size_t max_fanout = 128;
  /// The load rule fires at load > scale * max_capacitance. Initial mappings
  /// deliberately undersize (baseline sizing resolves ordinary overloads), so
  /// the DRC screens only gross violations; 1.0 would flag half-sized but
  /// perfectly optimizable designs.
  double load_limit_scale = 2.0;
  /// Witness lists are truncated to this many entries.
  std::size_t max_witness = 8;
  /// Worker threads for the electrical wavefront (1 = serial, 0 = hardware
  /// concurrency). Diagnostics are bitwise identical for any value.
  std::size_t threads = 1;
  /// Levels narrower than this run serially even when threads > 1.
  std::size_t min_level_width_for_parallel = 16;
};

struct DrcReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t errors() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] bool has_errors() const { return errors() > 0; }
  [[nodiscard]] bool empty() const { return diagnostics.empty(); }
  /// First error-severity diagnostic; nullptr when clean of errors.
  [[nodiscard]] const Diagnostic* first_error() const;
};

/// Structural rules only: combinational cycle (with witness path), floating
/// primary input, multi-driven primary output, dangling gate output, dead
/// cone. Safe on any netlist, including cyclic ones built by hand — this is
/// how in-memory cycles surface as diagnostics instead of the
/// std::logic_error topological_order() throws.
[[nodiscard]] DrcReport check_netlist(const netlist::Netlist& nl,
                                      const DrcOptions& options = {},
                                      const bench_format::Provenance* provenance = nullptr);

/// The full sweep over a timing snapshot: structural + binding + electrical
/// + SDC coverage. @p sdc (optional) enables the per-statement constraint
/// rules with @p sdc_file/line attribution; without it the dense
/// ctx.constraints() vectors are screened heuristically (an empty
/// TimingConstraints yields no SDC findings).
[[nodiscard]] DrcReport run_drc(const sta::TimingContext& ctx,
                                const DrcOptions& options = {},
                                const bench_format::Provenance* provenance = nullptr,
                                const bench_format::Sdc* sdc = nullptr,
                                const std::string& sdc_file = {});

/// Human-readable rendering, one line per diagnostic
/// ("file:line: error: [rule-id] message (witness: a -> b)").
[[nodiscard]] std::string format_text(const DrcReport& report);

/// Machine-readable rendering:
/// {"errors":N,"warnings":M,"diagnostics":[{...}, ...]}.
[[nodiscard]] std::string format_json(const DrcReport& report);

}  // namespace statsizer::drc
