#include "liberty/parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <optional>
#include <unordered_map>

namespace statsizer::liberty {

namespace {

enum class TokKind { kIdent, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  char punct = 0;
  int line = 0;
};

/// Liberty tokenizer. Identifiers are generous: they include numbers, units
/// ("1ns"), dots and signs, since Liberty attribute values are free-form.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;

    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;  // escapes
        if (text_[pos_] == '\n') ++line_;
        value.push_back(text_[pos_++]);
      }
      if (pos_ < text_.size()) ++pos_;  // closing quote
      t.kind = TokKind::kString;
      t.text = std::move(value);
      return t;
    }
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == ':' || c == ';' || c == ',') {
      ++pos_;
      t.kind = TokKind::kPunct;
      t.punct = c;
      t.text.assign(1, c);
      return t;
    }
    // Identifier / bare value.
    std::string value;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(d)) || d == '(' || d == ')' || d == '{' ||
          d == '}' || d == ':' || d == ';' || d == ',' || d == '"') {
        break;
      }
      value.push_back(d);
      ++pos_;
    }
    if (value.empty()) {
      // Unknown byte; skip it to guarantee progress.
      ++pos_;
      return next();
    }
    t.kind = TokKind::kIdent;
    t.text = std::move(value);
    return t;
  }

 private:
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;  // line continuation
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() && !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  StatusOr<AstGroup> parse_top() {
    if (current_.kind != TokKind::kIdent) {
      return Status::error("line " + std::to_string(current_.line) +
                           ": expected a group name at top level");
    }
    return parse_group();
  }

 private:
  void advance() { current_ = lexer_.next(); }

  [[nodiscard]] bool is_punct(char c) const {
    return current_.kind == TokKind::kPunct && current_.punct == c;
  }

  Status expect_punct(char c) {
    if (!is_punct(c)) {
      return Status::error("line " + std::to_string(current_.line) + ": expected '" +
                           std::string(1, c) + "', got '" + current_.text + "'");
    }
    advance();
    return Status();
  }

  /// current_ is the group type identifier.
  StatusOr<AstGroup> parse_group() {
    AstGroup g;
    g.type = current_.text;
    advance();
    if (Status s = expect_punct('('); !s.ok()) return s;
    while (!is_punct(')')) {
      if (current_.kind == TokKind::kEnd) {
        return Status::error("unexpected end of input in group argument list");
      }
      if (current_.kind == TokKind::kIdent || current_.kind == TokKind::kString) {
        g.args.push_back(current_.text);
        advance();
      } else if (is_punct(',')) {
        advance();
      } else {
        return Status::error("line " + std::to_string(current_.line) +
                             ": unexpected token '" + current_.text + "' in arguments");
      }
    }
    advance();  // ')'
    if (Status s = expect_punct('{'); !s.ok()) return s;
    if (Status s = parse_group_body(g); !s.ok()) return s;
    return g;
  }

  /// Parses statements until the matching '}' into @p g ('{' already eaten).
  Status parse_group_body(AstGroup& g) {
    while (!is_punct('}')) {
      if (current_.kind == TokKind::kEnd) {
        return Status::error("unexpected end of input inside group '" + g.type + "'");
      }
      if (current_.kind != TokKind::kIdent) {
        return Status::error("line " + std::to_string(current_.line) +
                             ": expected statement, got '" + current_.text + "'");
      }
      const std::string name = current_.text;
      const int line = current_.line;
      advance();
      if (is_punct(':')) {
        advance();
        std::string value;
        while (current_.kind == TokKind::kIdent || current_.kind == TokKind::kString ||
               is_punct(',')) {
          if (!value.empty()) value += ' ';
          value += current_.text;
          advance();
        }
        if (Status s = expect_punct(';'); !s.ok()) return s;
        g.attrs.emplace_back(name, std::move(value));
      } else if (is_punct('(')) {
        advance();
        std::vector<std::string> values;
        while (!is_punct(')')) {
          if (current_.kind == TokKind::kEnd) {
            return Status::error("line " + std::to_string(line) +
                                 ": unterminated '(' in statement '" + name + "'");
          }
          if (current_.kind == TokKind::kIdent || current_.kind == TokKind::kString) {
            values.push_back(current_.text);
            advance();
          } else if (is_punct(',')) {
            advance();
          } else {
            return Status::error("line " + std::to_string(current_.line) +
                                 ": unexpected token '" + current_.text + "'");
          }
        }
        advance();
        if (is_punct('{')) {
          advance();
          AstGroup child;
          child.type = name;
          child.args = std::move(values);
          Status s = parse_group_body(child);
          if (!s.ok()) return s;
          g.children.push_back(std::move(child));
        } else {
          if (Status s = expect_punct(';'); !s.ok()) return s;
          g.complex_attrs.emplace_back(name, std::move(values));
        }
      } else {
        return Status::error("line " + std::to_string(line) + ": statement '" + name +
                             "' must be followed by ':' or '('");
      }
    }
    advance();  // '}'
    return Status();
  }

  Lexer lexer_;
  Token current_;
};

/// LUT template registry: template name -> (index_1, index_2).
struct LutTemplate {
  std::vector<double> index1;
  std::vector<double> index2;
};

StatusOr<Lut> interpret_lut(const AstGroup& g,
                            const std::unordered_map<std::string, LutTemplate>& templates) {
  Lut lut;
  if (!g.args.empty()) {
    const auto it = templates.find(g.args[0]);
    if (it != templates.end()) {
      lut.index1 = it->second.index1;
      lut.index2 = it->second.index2;
    } else if (g.args[0] != "scalar") {
      return Status::error("unknown lu_table_template '" + g.args[0] + "'");
    }
  }
  if (const auto* idx = g.complex_attr("index_1")) {
    auto parsed = parse_number_list(idx->empty() ? "" : (*idx)[0]);
    if (!parsed.ok()) return parsed.status();
    lut.index1 = std::move(parsed.value());
  }
  if (const auto* idx = g.complex_attr("index_2")) {
    auto parsed = parse_number_list(idx->empty() ? "" : (*idx)[0]);
    if (!parsed.ok()) return parsed.status();
    lut.index2 = std::move(parsed.value());
  }
  const auto* values = g.complex_attr("values");
  if (values == nullptr) return Status::error("LUT group '" + g.type + "' has no values()");
  for (const std::string& row : *values) {
    auto parsed = parse_number_list(row);
    if (!parsed.ok()) return parsed.status();
    lut.values.insert(lut.values.end(), parsed->begin(), parsed->end());
  }
  if (!lut.shape_ok()) {
    return Status::error("LUT group '" + g.type + "': values count does not match indices");
  }
  return lut;
}

StatusOr<double> parse_double_attr(const AstGroup& g, std::string_view name) {
  const std::string_view v = g.attr(name);
  if (v.empty()) return Status::error("missing attribute '" + std::string(name) + "'");
  char* end = nullptr;
  const double value = std::strtod(std::string(v).c_str(), &end);
  return value;
}

StatusOr<TimingArc> interpret_arc(const AstGroup& g,
                                  const std::unordered_map<std::string, LutTemplate>& templates) {
  TimingArc arc;
  arc.related_pin = std::string(g.attr("related_pin"));
  if (arc.related_pin.empty()) return Status::error("timing() group without related_pin");
  const struct {
    const char* name;
    Lut TimingArc::*member;
  } kTables[] = {
      {"cell_rise", &TimingArc::cell_rise},
      {"cell_fall", &TimingArc::cell_fall},
      {"rise_transition", &TimingArc::rise_transition},
      {"fall_transition", &TimingArc::fall_transition},
  };
  for (const auto& entry : kTables) {
    if (const AstGroup* lut_group = g.child(entry.name)) {
      auto lut = interpret_lut(*lut_group, templates);
      if (!lut.ok()) return lut.status();
      arc.*(entry.member) = std::move(lut.value());
    }
  }
  if (arc.cell_rise.empty() && arc.cell_fall.empty()) {
    return Status::error("timing() from '" + arc.related_pin + "' has no delay tables");
  }
  // Tolerate single-polarity tables by mirroring.
  if (arc.cell_rise.empty()) arc.cell_rise = arc.cell_fall;
  if (arc.cell_fall.empty()) arc.cell_fall = arc.cell_rise;
  if (arc.rise_transition.empty()) arc.rise_transition = arc.fall_transition;
  if (arc.fall_transition.empty()) arc.fall_transition = arc.rise_transition;
  if (arc.rise_transition.empty()) {
    // No transition data at all: degrade to a zero-slew scalar.
    arc.rise_transition.values = {0.0};
    arc.fall_transition.values = {0.0};
  }
  return arc;
}

StatusOr<Pin> interpret_pin(const AstGroup& g,
                            const std::unordered_map<std::string, LutTemplate>& templates) {
  Pin pin;
  if (g.args.empty()) return Status::error("pin group without a name");
  pin.name = g.args[0];
  const std::string_view dir = g.attr("direction");
  if (dir == "input") {
    pin.direction = PinDirection::kInput;
  } else if (dir == "output") {
    pin.direction = PinDirection::kOutput;
  } else {
    return Status::error("pin " + pin.name + ": direction must be input or output");
  }
  if (!g.attr("capacitance").empty()) {
    auto v = parse_double_attr(g, "capacitance");
    if (!v.ok()) return v.status();
    pin.capacitance_ff = *v;
  }
  if (!g.attr("max_capacitance").empty()) {
    auto v = parse_double_attr(g, "max_capacitance");
    if (!v.ok()) return v.status();
    pin.max_capacitance_ff = *v;
  }
  if (!g.attr("max_transition").empty()) {
    auto v = parse_double_attr(g, "max_transition");
    if (!v.ok()) return v.status();
    pin.max_transition_ps = *v;
  }
  pin.function = std::string(g.attr("function"));
  for (const AstGroup& child : g.children) {
    if (child.type == "timing") {
      auto arc = interpret_arc(child, templates);
      if (!arc.ok()) return arc.status();
      pin.arcs.push_back(std::move(arc.value()));
    }
  }
  return pin;
}

}  // namespace

std::string_view AstGroup::attr(std::string_view name) const {
  for (const auto& [k, v] : attrs) {
    if (k == name) return v;
  }
  return {};
}

const std::vector<std::string>* AstGroup::complex_attr(std::string_view name) const {
  for (const auto& [k, v] : complex_attrs) {
    if (k == name) return &v;
  }
  return nullptr;
}

const AstGroup* AstGroup::child(std::string_view wanted_type) const {
  for (const AstGroup& c : children) {
    if (c.type == wanted_type) return &c;
  }
  return nullptr;
}

StatusOr<std::vector<double>> parse_number_list(std::string_view text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) || text[pos] == ',')) {
      ++pos;
    }
    if (pos >= text.size()) break;
    const std::size_t start = pos;
    while (pos < text.size() && !std::isspace(static_cast<unsigned char>(text[pos])) &&
           text[pos] != ',') {
      ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      return Status::error("bad number in list: '" + token + "'");
    }
    out.push_back(v);
  }
  return out;
}

StatusOr<AstGroup> parse_ast(std::string_view text) {
  Parser parser(text);
  return parser.parse_top();
}

StatusOr<Library> parse_library(std::string_view text) {
  auto ast = parse_ast(text);
  if (!ast.ok()) return ast.status();
  const AstGroup& root = *ast;
  if (root.type != "library") {
    return Status::error("top-level group is '" + root.type + "', expected 'library'");
  }
  Library lib(root.args.empty() ? "lib" : root.args[0]);

  std::unordered_map<std::string, LutTemplate> templates;
  for (const AstGroup& child : root.children) {
    if (child.type != "lu_table_template") continue;
    if (child.args.empty()) return Status::error("lu_table_template without a name");
    LutTemplate t;
    if (const auto* idx = child.complex_attr("index_1")) {
      auto parsed = parse_number_list(idx->empty() ? "" : (*idx)[0]);
      if (!parsed.ok()) return parsed.status();
      t.index1 = std::move(parsed.value());
    }
    if (const auto* idx = child.complex_attr("index_2")) {
      auto parsed = parse_number_list(idx->empty() ? "" : (*idx)[0]);
      if (!parsed.ok()) return parsed.status();
      t.index2 = std::move(parsed.value());
    }
    templates.emplace(child.args[0], std::move(t));
  }

  for (const AstGroup& child : root.children) {
    if (child.type != "cell") continue;
    if (child.args.empty()) return Status::error("cell group without a name");
    Cell cell;
    cell.name = child.args[0];
    if (!child.attr("area").empty()) {
      auto v = parse_double_attr(child, "area");
      if (!v.ok()) return v.status();
      cell.area_um2 = *v;
    }
    for (const AstGroup& pin_group : child.children) {
      if (pin_group.type != "pin") continue;
      auto pin = interpret_pin(pin_group, templates);
      if (!pin.ok()) {
        return Status::error("cell " + cell.name + ": " + pin.status().message());
      }
      cell.pins.push_back(std::move(pin.value()));
    }
    lib.add_cell(std::move(cell));
  }

  if (Status s = lib.finalize(); !s.ok()) return s;
  return lib;
}

}  // namespace statsizer::liberty
