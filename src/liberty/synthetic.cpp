#include "liberty/synthetic.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace statsizer::liberty {

namespace {

/// Pin names for a family: INV/BUF use A; AOI/OAI use A1,A2,B; MUX2 uses
/// D0,D1,S; everything else A1..An.
std::vector<std::string> pin_names(const std::string& base, std::size_t arity) {
  if (base == "INV" || base == "BUF") return {"A"};
  if (base == "AOI21" || base == "OAI21") return {"A1", "A2", "B"};
  if (base == "MUX2") return {"D0", "D1", "S"};
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= arity; ++i) names.push_back("A" + std::to_string(i));
  return names;
}

std::string function_string(const std::string& base, const std::vector<std::string>& pins) {
  const auto join = [&](const char* op) {
    std::string s;
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (i > 0) {
        s += ' ';
        s += op;
        s += ' ';
      }
      s += pins[i];
    }
    return s;
  };
  if (base == "INV") return "!A";
  if (base == "BUF") return "A";
  if (base.rfind("NAND", 0) == 0) return "!(" + join("&") + ")";
  if (base.rfind("NOR", 0) == 0) return "!(" + join("|") + ")";
  if (base.rfind("AND", 0) == 0) return "(" + join("&") + ")";
  if (base.rfind("OR", 0) == 0) return "(" + join("|") + ")";
  if (base == "XOR2") return "(A1 ^ A2)";
  if (base == "XNOR2") return "!(A1 ^ A2)";
  if (base == "AOI21") return "!((A1 & A2) | B)";
  if (base == "OAI21") return "!((A1 | A2) & B)";
  if (base == "MUX2") return "((D0 & !S) | (D1 & S))";
  throw std::logic_error("function_string: unknown base " + base);
}

std::string drive_suffix(double drive) {
  char buf[32];
  if (drive == static_cast<int>(drive)) {
    std::snprintf(buf, sizeof buf, "_X%d", static_cast<int>(drive));
  } else {
    // 'P' as decimal point: X0P5.
    std::snprintf(buf, sizeof buf, "_X%gP%d", std::floor(drive),
                  static_cast<int>(std::round((drive - std::floor(drive)) * 10)));
  }
  return buf;
}

}  // namespace

const std::vector<CellSpec>& synthetic_cell_specs() {
  // Logical efforts / parasitics follow the standard static-CMOS values
  // (Logical Effort, table 4.1) with composite (AND/OR/BUF) families given
  // the effort of their input stage and the summed parasitic of both stages.
  static const std::vector<CellSpec> kSpecs = {
      {"INV", {1.0}, 1.0, 2, false},
      {"BUF", {1.0}, 2.6, 4, false},
      {"NAND2", {4.0 / 3, 4.0 / 3}, 2.0, 4, false},
      {"NAND3", {5.0 / 3, 5.0 / 3, 5.0 / 3}, 3.0, 6, false},
      {"NAND4", {2.0, 2.0, 2.0, 2.0}, 4.0, 8, false},
      {"NOR2", {5.0 / 3, 5.0 / 3}, 2.0, 4, false},
      {"NOR3", {7.0 / 3, 7.0 / 3, 7.0 / 3}, 3.0, 6, false},
      {"NOR4", {3.0, 3.0, 3.0, 3.0}, 4.0, 8, false},
      {"AND2", {4.0 / 3, 4.0 / 3}, 3.2, 6, false},
      {"AND3", {5.0 / 3, 5.0 / 3, 5.0 / 3}, 4.2, 8, true},
      {"AND4", {2.0, 2.0, 2.0, 2.0}, 5.2, 10, true},
      {"OR2", {5.0 / 3, 5.0 / 3}, 3.2, 6, false},
      {"OR3", {7.0 / 3, 7.0 / 3, 7.0 / 3}, 4.2, 8, true},
      {"OR4", {3.0, 3.0, 3.0, 3.0}, 5.2, 10, true},
      {"XOR2", {4.0, 4.0}, 4.0, 10, true},
      {"XNOR2", {4.0, 4.0}, 4.2, 10, true},
      {"AOI21", {2.0, 2.0, 5.0 / 3}, 2.8, 6, true},
      {"OAI21", {5.0 / 3, 5.0 / 3, 2.0}, 2.8, 6, true},
      {"MUX2", {2.0, 2.0, 2.7}, 3.8, 12, true},
  };
  return kSpecs;
}

Library build_synthetic_90nm(const SyntheticOptions& options) {
  Library lib("statsizer_synth90");

  for (const CellSpec& spec : synthetic_cell_specs()) {
    const std::vector<double>& drives =
        spec.complex_cell ? options.complex_drives : options.simple_drives;
    const std::vector<std::string> pins = pin_names(spec.base_name, spec.pin_efforts.size());
    const bool inverting = spec.base_name == "INV" || spec.base_name.rfind("NAND", 0) == 0 ||
                           spec.base_name.rfind("NOR", 0) == 0 || spec.base_name == "XNOR2" ||
                           spec.base_name == "AOI21" || spec.base_name == "OAI21";

    for (const double k : drives) {
      Cell cell;
      cell.name = spec.base_name + drive_suffix(k);
      cell.drive = k;
      cell.area_um2 = options.area_unit_um2 * spec.transistors * (0.5 + 0.5 * k);

      for (std::size_t i = 0; i < pins.size(); ++i) {
        Pin p;
        p.name = pins[i];
        p.direction = PinDirection::kInput;
        p.capacitance_ff = options.c_unit_ff * spec.pin_efforts[i] * k;
        p.max_transition_ps = options.max_transition_ps;
        cell.pins.push_back(std::move(p));
      }

      Pin out;
      out.name = inverting ? "ZN" : "Z";
      out.direction = PinDirection::kOutput;
      out.function = function_string(spec.base_name, pins);
      out.max_capacitance_ff = options.max_load_per_drive_ff * k;
      out.max_transition_ps = options.max_transition_ps;

      // Load axis scales with drive so the table covers the loads this size
      // will realistically see.
      std::vector<double> load_axis = options.load_axis_x1_ff;
      for (double& v : load_axis) v *= k;

      for (const std::string& pin : pins) {
        TimingArc arc;
        arc.related_pin = pin;
        const auto fill = [&](Lut& lut, double skew, bool transition) {
          lut.index1 = options.slew_axis_ps;
          lut.index2 = load_axis;
          lut.values.reserve(lut.index1.size() * lut.index2.size());
          for (const double slew : lut.index1) {
            for (const double load : lut.index2) {
              const double rc = (options.tau_ps / options.c_unit_ff) * load / k;
              double v = 0.0;
              if (!transition) {
                v = options.tau_ps * spec.parasitic + rc +
                    options.slew_sensitivity * slew +
                    options.quadratic_load * (load / k) * (load / k);
              } else {
                v = 1.2 * options.tau_ps * spec.parasitic + options.slew_gain * rc +
                    0.10 * slew;
              }
              lut.values.push_back(v * skew);
            }
          }
        };
        fill(arc.cell_rise, options.rise_skew, false);
        fill(arc.cell_fall, options.fall_skew, false);
        fill(arc.rise_transition, 1.08, true);
        fill(arc.fall_transition, 0.92, true);
        out.arcs.push_back(std::move(arc));
      }
      cell.pins.push_back(std::move(out));
      lib.add_cell(std::move(cell));
    }
  }

  if (const Status s = lib.finalize(); !s.ok()) {
    throw std::logic_error("build_synthetic_90nm produced an invalid library: " + s.message());
  }
  return lib;
}

}  // namespace statsizer::liberty
