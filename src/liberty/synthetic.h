// Synthetic 90 nm standard-cell library.
//
// The paper sized circuits against "an industrial 90nm lookup-table based
// standard cell library with 6-8 sizes per gate type" — not redistributable.
// This generator builds a physically-plausible stand-in from logical-effort
// parameters (Sutherland/Sproull/Harris):
//
//   delay(slew, load) = tau * p  +  (tau / c_unit) * load / drive
//                       + slew_sensitivity * slew  (+ mild quadratic load term)
//   input cap(pin)    = c_unit * g_pin * drive
//   area              = base_area * (0.5 + 0.5 * drive)
//
// sampled onto 7x7 (slew x load) NLDM tables whose load axis scales with the
// cell drive, exactly as production libraries do. What matters for sizing
// experiments — delay falls and cap/area rise with drive, delay rises with
// load — is real physics here, not curve fitting.
#pragma once

#include <vector>

#include "liberty/model.h"

namespace statsizer::liberty {

/// Knobs for the generator (defaults model a mainstream 90 nm process).
struct SyntheticOptions {
  double tau_ps = 6.0;             ///< logical-effort time constant (FO4 ~= 5*tau)
  double c_unit_ff = 1.8;          ///< input cap of a unit (X1) inverter
  double slew_sensitivity = 0.15;  ///< d(delay)/d(input slew)
  double slew_gain = 2.2;          ///< output-slew slope vs. R*C relative to delay slope
  double quadratic_load = 0.002;   ///< mild nonlinearity: + q * (load/drive)^2 ps
  double rise_skew = 1.05;         ///< cell_rise = skew * nominal
  double fall_skew = 0.95;         ///< cell_fall = skew * nominal
  double area_unit_um2 = 0.65;     ///< um^2 per transistor at X1
  double max_load_per_drive_ff = 40.0;  ///< max_capacitance = this * drive
  double max_transition_ps = 800.0;     ///< max_transition on every pin (0 = none)
  /// Drive strengths for simple, high-population cells (8 sizes)...
  std::vector<double> simple_drives = {1, 2, 3, 4, 6, 8, 12, 16};
  /// ...and for complex cells (6 sizes), matching the paper's "6-8 sizes".
  std::vector<double> complex_drives = {1, 2, 3, 4, 6, 8};
  /// NLDM axes: input slew points (ps) and X1 load points (fF; scaled by drive).
  std::vector<double> slew_axis_ps = {5, 10, 20, 40, 80, 160, 320};
  std::vector<double> load_axis_x1_ff = {0.5, 1, 2, 4, 8, 16, 32};
};

/// Builds the finalized synthetic library (19 cell groups, ~130 cells).
[[nodiscard]] Library build_synthetic_90nm(const SyntheticOptions& options = {});

/// Logical-effort description of one cell family, exposed for tests/ablations.
struct CellSpec {
  std::string base_name;           ///< e.g. "NAND2"
  std::vector<double> pin_efforts; ///< logical effort g per input pin
  double parasitic;                ///< parasitic delay p (in tau units)
  int transistors;                 ///< area proxy
  bool complex_cell;               ///< chooses the 6-size list over the 8-size list
};

/// The cell families the synthetic library instantiates.
[[nodiscard]] const std::vector<CellSpec>& synthetic_cell_specs();

}  // namespace statsizer::liberty
