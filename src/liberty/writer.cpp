#include "liberty/writer.h"

#include <cstdio>
#include <sstream>

namespace statsizer::liberty {

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string number_list(const std::vector<double>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += num(xs[i]);
  }
  return out;
}

void write_lut(std::ostringstream& os, const char* kind, const Lut& lut, int indent) {
  const std::string pad(indent, ' ');
  os << pad << kind << " (lut) {\n";
  if (!lut.index1.empty()) {
    os << pad << "  index_1(\"" << number_list(lut.index1) << "\");\n";
  }
  if (!lut.index2.empty()) {
    os << pad << "  index_2(\"" << number_list(lut.index2) << "\");\n";
  }
  os << pad << "  values(";
  const std::size_t cols = lut.index2.empty() ? lut.values.size() : lut.index2.size();
  const std::size_t rows = cols == 0 ? 1 : lut.values.size() / cols;
  for (std::size_t r = 0; r < rows; ++r) {
    if (r > 0) os << ",\n" << pad << "         ";
    os << '"';
    for (std::size_t c = 0; c < cols; ++c) {
      if (c > 0) os << ", ";
      os << num(lut.values[r * cols + c]);
    }
    os << '"';
  }
  os << ");\n";
  os << pad << "}\n";
}

}  // namespace

std::string write_library(const Library& lib) {
  std::ostringstream os;
  os << "library (" << lib.name() << ") {\n";
  os << "  /* statsizer synthetic-library writer; units: ps, fF, um^2 */\n";
  os << "  time_unit : \"1ps\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  lu_table_template (lut) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  os << "  }\n";

  for (const Cell& cell : lib.cells()) {
    os << "  cell (" << cell.name << ") {\n";
    os << "    area : " << num(cell.area_um2) << ";\n";
    for (const Pin& pin : cell.pins) {
      os << "    pin (" << pin.name << ") {\n";
      if (pin.direction == PinDirection::kInput) {
        os << "      direction : input;\n";
        os << "      capacitance : " << num(pin.capacitance_ff) << ";\n";
        if (pin.max_transition_ps > 0.0) {
          os << "      max_transition : " << num(pin.max_transition_ps) << ";\n";
        }
      } else {
        os << "      direction : output;\n";
        if (!pin.function.empty()) {
          os << "      function : \"" << pin.function << "\";\n";
        }
        if (pin.max_capacitance_ff > 0.0) {
          os << "      max_capacitance : " << num(pin.max_capacitance_ff) << ";\n";
        }
        if (pin.max_transition_ps > 0.0) {
          os << "      max_transition : " << num(pin.max_transition_ps) << ";\n";
        }
        for (const TimingArc& arc : pin.arcs) {
          os << "      timing () {\n";
          os << "        related_pin : \"" << arc.related_pin << "\";\n";
          write_lut(os, "cell_rise", arc.cell_rise, 8);
          write_lut(os, "cell_fall", arc.cell_fall, 8);
          write_lut(os, "rise_transition", arc.rise_transition, 8);
          write_lut(os, "fall_transition", arc.fall_transition, 8);
          os << "      }\n";
        }
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace statsizer::liberty
