// Standard-cell library data model: a pragmatic subset of the Liberty format
// sufficient for NLDM timing (lookup tables over input slew x output load),
// pin capacitances, areas, and drive-strength cell groups for sizing.
//
// Unit conventions across the whole library (declared in emitted Liberty
// text): time in picoseconds, capacitance in femtofarads, area in um^2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "util/status.h"

namespace statsizer::liberty {

/// Two-dimensional NLDM lookup table: index1 = input slew (ps),
/// index2 = output load (fF), values row-major [index1][index2].
/// A 1x1 table is a scalar; 1xN / Nx1 degenerate to 1-D interpolation.
struct Lut {
  std::vector<double> index1;
  std::vector<double> index2;
  std::vector<double> values;

  /// Bilinear interpolation with linear extrapolation beyond the grid.
  [[nodiscard]] double lookup(double slew_ps, double load_ff) const;

  [[nodiscard]] bool empty() const { return values.empty(); }
  [[nodiscard]] bool shape_ok() const {
    return values.size() == std::max<std::size_t>(1, index1.size()) *
                                std::max<std::size_t>(1, index2.size());
  }
};

/// One timing arc of an output pin: input pin -> output pin delay/slew model.
struct TimingArc {
  std::string related_pin;
  Lut cell_rise;
  Lut cell_fall;
  Lut rise_transition;
  Lut fall_transition;

  /// Worst-case (max of rise/fall) delay — the library runs single-valued
  /// worst-slope analysis, which is the convention the paper's delay model
  /// implies.
  [[nodiscard]] double delay(double slew_ps, double load_ff) const;

  /// Worst-case output transition.
  [[nodiscard]] double output_slew(double slew_ps, double load_ff) const;
};

enum class PinDirection : std::uint8_t { kInput, kOutput };

struct Pin {
  std::string name;
  PinDirection direction = PinDirection::kInput;
  double capacitance_ff = 0.0;     ///< input pins
  double max_capacitance_ff = 0.0; ///< output pins; 0 = unconstrained
  double max_transition_ps = 0.0;  ///< slew limit at this pin; 0 = unconstrained
  std::string function;            ///< output pins, Liberty boolean expression
  std::vector<TimingArc> arcs;     ///< output pins, one per related input
};

/// A library cell ("NAND2_X4"). Cells are immutable after library load.
struct Cell {
  std::string name;
  double area_um2 = 0.0;
  /// Relative drive strength parsed from the _X<k> suffix (1.0 if absent).
  double drive = 1.0;
  std::vector<Pin> pins;

  /// The single output pin (this library models single-output cells).
  [[nodiscard]] const Pin& output() const;
  /// Input pins in declaration order.
  [[nodiscard]] std::vector<const Pin*> input_pins() const;
  /// Capacitance of the i-th input pin.
  [[nodiscard]] double input_cap_ff(std::size_t i) const;
  /// Timing arc from the i-th input pin to the output.
  [[nodiscard]] const TimingArc& arc_from(std::size_t i) const;
  /// Number of input pins.
  [[nodiscard]] std::size_t arity() const;
};

/// Cells implementing the same function at different drive strengths,
/// sorted by ascending drive. size_index in the netlist indexes sizes().
class CellGroup {
 public:
  CellGroup(std::string base_name, netlist::GateFunc func, std::size_t arity)
      : base_name_(std::move(base_name)), func_(func), arity_(arity) {}

  [[nodiscard]] const std::string& base_name() const { return base_name_; }
  [[nodiscard]] netlist::GateFunc func() const { return func_; }
  [[nodiscard]] std::size_t arity() const { return arity_; }
  [[nodiscard]] std::span<const std::uint32_t> sizes() const { return cell_indices_; }
  [[nodiscard]] std::size_t size_count() const { return cell_indices_.size(); }

  void add_cell_index(std::uint32_t index) { cell_indices_.push_back(index); }
  void sort_by_drive(const std::vector<Cell>& cells);

 private:
  std::string base_name_;
  netlist::GateFunc func_;
  std::size_t arity_ = 0;
  std::vector<std::uint32_t> cell_indices_;
};

/// Maps a cell base name ("NAND3") to its netlist function and arity;
/// nullopt for base names the netlist layer does not model.
struct BaseFunc {
  netlist::GateFunc func;
  std::size_t arity;
};
[[nodiscard]] std::optional<BaseFunc> base_func_of(std::string_view base_name);

/// The library: cells plus derived cell groups and name lookup.
class Library {
 public:
  Library() = default;
  explicit Library(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Adds a cell; returns its index. Call finalize() after the last add.
  std::uint32_t add_cell(Cell cell);

  /// Builds cell groups and lookup maps; validates cells. Must be called
  /// once after construction/parsing before timing queries.
  [[nodiscard]] Status finalize();

  [[nodiscard]] std::span<const Cell> cells() const { return cells_; }
  [[nodiscard]] const Cell& cell(std::uint32_t index) const { return cells_[index]; }

  [[nodiscard]] std::span<const CellGroup> groups() const { return groups_; }
  [[nodiscard]] const CellGroup& group(std::uint32_t index) const { return groups_[index]; }

  /// Group index for a base name; nullopt if the library has no such group.
  [[nodiscard]] std::optional<std::uint32_t> find_group(std::string_view base_name) const;

  /// Group index implementing (func, arity); nullopt if unsupported.
  [[nodiscard]] std::optional<std::uint32_t> find_group(netlist::GateFunc func,
                                                        std::size_t arity) const;

  /// Cell index by full name ("NAND2_X4"); nullopt if absent.
  [[nodiscard]] std::optional<std::uint32_t> find_cell(std::string_view name) const;

  /// The cell bound to (group, size_index).
  [[nodiscard]] const Cell& cell_for(std::uint32_t group_index, std::uint16_t size_index) const;

  /// Largest fanin count over all groups (mapper's decomposition bound).
  [[nodiscard]] std::size_t max_arity() const;

 private:
  std::string name_ = "lib";
  std::vector<Cell> cells_;
  std::vector<CellGroup> groups_;
  std::unordered_map<std::string, std::uint32_t> cell_by_name_;
  std::unordered_map<std::string, std::uint32_t> group_by_base_;
};

/// Splits "NAND2_X4" into base "NAND2" and drive 4.0; drive suffixes may use
/// 'P' as a decimal point ("X0P5" = 0.5). Returns drive 1.0 when no suffix.
struct ParsedCellName {
  std::string base;
  double drive = 1.0;
};
[[nodiscard]] ParsedCellName parse_cell_name(std::string_view name);

}  // namespace statsizer::liberty
