// Recursive-descent parser for the Liberty subset this library emits and
// consumes: nested groups, simple attributes (`name : value ;`), complex
// attributes (`name ("v1", "v2");`), block and line comments, and line
// continuations. The parse happens in two layers:
//   1. text -> generic AST (AstGroup tree), reusable for any Liberty-ish file;
//   2. AST  -> liberty::Library (cells, pins, arcs, LUT templates).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "liberty/model.h"
#include "util/status.h"

namespace statsizer::liberty {

/// Generic Liberty group: `type (args...) { attrs / complex attrs / children }`.
struct AstGroup {
  std::string type;
  std::vector<std::string> args;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::pair<std::string, std::vector<std::string>>> complex_attrs;
  std::vector<AstGroup> children;

  /// First simple attribute with the given name, or empty view.
  [[nodiscard]] std::string_view attr(std::string_view name) const;
  /// First complex attribute with the given name, or nullptr.
  [[nodiscard]] const std::vector<std::string>* complex_attr(std::string_view name) const;
  /// First child group of the given type, or nullptr.
  [[nodiscard]] const AstGroup* child(std::string_view wanted_type) const;
};

/// Parses Liberty text into its top-level group (normally `library`).
[[nodiscard]] StatusOr<AstGroup> parse_ast(std::string_view text);

/// Parses Liberty text into a finalized Library.
[[nodiscard]] StatusOr<Library> parse_library(std::string_view text);

/// Splits a Liberty numeric list string ("1.0, 2.0, 3.0") into doubles.
[[nodiscard]] StatusOr<std::vector<double>> parse_number_list(std::string_view text);

}  // namespace statsizer::liberty
