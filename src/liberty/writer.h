// Serializes a liberty::Library back to Liberty text. The emitted subset is
// exactly what liberty::parse_library understands, so write -> parse is an
// identity on the model (round-trip tested).
#pragma once

#include <string>

#include "liberty/model.h"

namespace statsizer::liberty {

/// Emits the library as Liberty text (ps / fF units).
[[nodiscard]] std::string write_library(const Library& lib);

}  // namespace statsizer::liberty
