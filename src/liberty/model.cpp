#include "liberty/model.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <stdexcept>

#include "util/numeric.h"

namespace statsizer::liberty {

double Lut::lookup(double slew_ps, double load_ff) const {
  if (!shape_ok() || empty()) {
    throw std::logic_error("Lut::lookup on malformed table");
  }
  if (index1.empty() && index2.empty()) return values[0];  // scalar
  if (index1.empty() || index1.size() == 1) {
    return util::interp1(index2, values, load_ff);
  }
  if (index2.empty() || index2.size() == 1) {
    return util::interp1(index1, values, slew_ps);
  }
  return util::interp2(index1, index2, values, slew_ps, load_ff);
}

double TimingArc::delay(double slew_ps, double load_ff) const {
  const double r = cell_rise.lookup(slew_ps, load_ff);
  const double f = cell_fall.lookup(slew_ps, load_ff);
  return std::max(r, f);
}

double TimingArc::output_slew(double slew_ps, double load_ff) const {
  const double r = rise_transition.lookup(slew_ps, load_ff);
  const double f = fall_transition.lookup(slew_ps, load_ff);
  return std::max(r, f);
}

const Pin& Cell::output() const {
  for (const Pin& p : pins) {
    if (p.direction == PinDirection::kOutput) return p;
  }
  throw std::logic_error("cell " + name + " has no output pin");
}

std::vector<const Pin*> Cell::input_pins() const {
  std::vector<const Pin*> result;
  for (const Pin& p : pins) {
    if (p.direction == PinDirection::kInput) result.push_back(&p);
  }
  return result;
}

double Cell::input_cap_ff(std::size_t i) const {
  std::size_t seen = 0;
  for (const Pin& p : pins) {
    if (p.direction == PinDirection::kInput) {
      if (seen == i) return p.capacitance_ff;
      ++seen;
    }
  }
  throw std::out_of_range("cell " + name + ": no input pin #" + std::to_string(i));
}

const TimingArc& Cell::arc_from(std::size_t i) const {
  std::size_t seen = 0;
  std::string wanted;
  for (const Pin& p : pins) {
    if (p.direction == PinDirection::kInput) {
      if (seen == i) {
        wanted = p.name;
        break;
      }
      ++seen;
    }
  }
  if (wanted.empty()) {
    throw std::out_of_range("cell " + name + ": no input pin #" + std::to_string(i));
  }
  const Pin& out = output();
  for (const TimingArc& arc : out.arcs) {
    if (arc.related_pin == wanted) return arc;
  }
  throw std::logic_error("cell " + name + ": no timing arc from pin " + wanted);
}

std::size_t Cell::arity() const {
  std::size_t n = 0;
  for (const Pin& p : pins) {
    if (p.direction == PinDirection::kInput) ++n;
  }
  return n;
}

void CellGroup::sort_by_drive(const std::vector<Cell>& cells) {
  std::sort(cell_indices_.begin(), cell_indices_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return cells[a].drive < cells[b].drive; });
}

std::optional<BaseFunc> base_func_of(std::string_view base_name) {
  using netlist::GateFunc;
  static const std::unordered_map<std::string_view, BaseFunc> kTable = {
      {"INV", {GateFunc::kInv, 1}},     {"BUF", {GateFunc::kBuf, 1}},
      {"NAND2", {GateFunc::kNand, 2}},  {"NAND3", {GateFunc::kNand, 3}},
      {"NAND4", {GateFunc::kNand, 4}},  {"NOR2", {GateFunc::kNor, 2}},
      {"NOR3", {GateFunc::kNor, 3}},    {"NOR4", {GateFunc::kNor, 4}},
      {"AND2", {GateFunc::kAnd, 2}},    {"AND3", {GateFunc::kAnd, 3}},
      {"AND4", {GateFunc::kAnd, 4}},    {"OR2", {GateFunc::kOr, 2}},
      {"OR3", {GateFunc::kOr, 3}},      {"OR4", {GateFunc::kOr, 4}},
      {"XOR2", {GateFunc::kXor, 2}},    {"XNOR2", {GateFunc::kXnor, 2}},
      {"AOI21", {GateFunc::kAoi21, 3}}, {"OAI21", {GateFunc::kOai21, 3}},
      {"MUX2", {GateFunc::kMux2, 3}},
  };
  const auto it = kTable.find(base_name);
  if (it == kTable.end()) return std::nullopt;
  return it->second;
}

std::uint32_t Library::add_cell(Cell cell) {
  const auto index = static_cast<std::uint32_t>(cells_.size());
  cells_.push_back(std::move(cell));
  return index;
}

Status Library::finalize() {
  groups_.clear();
  cell_by_name_.clear();
  group_by_base_.clear();

  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    Cell& c = cells_[i];
    if (cell_by_name_.contains(c.name)) {
      return Status::error("duplicate cell name: " + c.name);
    }
    cell_by_name_.emplace(c.name, i);

    // Validate structure: exactly one output pin with arcs from each input.
    std::size_t outputs = 0;
    for (const Pin& p : c.pins) {
      if (p.direction == PinDirection::kOutput) ++outputs;
    }
    if (outputs != 1) {
      return Status::error("cell " + c.name + ": expected exactly 1 output pin");
    }
    const std::size_t n_in = c.arity();
    if (n_in == 0) return Status::error("cell " + c.name + ": no input pins");
    const Pin& out = c.output();
    for (const Pin& p : c.pins) {
      if (p.direction != PinDirection::kInput) continue;
      const bool has_arc =
          std::any_of(out.arcs.begin(), out.arcs.end(),
                      [&](const TimingArc& a) { return a.related_pin == p.name; });
      if (!has_arc) {
        return Status::error("cell " + c.name + ": missing timing arc from pin " + p.name);
      }
    }
    for (const TimingArc& a : out.arcs) {
      if (!a.cell_rise.shape_ok() || !a.cell_fall.shape_ok() ||
          !a.rise_transition.shape_ok() || !a.fall_transition.shape_ok()) {
        return Status::error("cell " + c.name + ": malformed LUT in arc from " + a.related_pin);
      }
      if (a.cell_rise.empty() || a.cell_fall.empty()) {
        return Status::error("cell " + c.name + ": empty delay LUT in arc from " +
                             a.related_pin);
      }
    }

    const ParsedCellName parsed = parse_cell_name(c.name);
    c.drive = parsed.drive;
    const auto bf = base_func_of(parsed.base);
    if (!bf.has_value()) {
      // Unknown base names are allowed in the library (e.g. future cells) but
      // do not join a sizing group.
      continue;
    }
    if (bf->arity != n_in) {
      return Status::error("cell " + c.name + ": pin count " + std::to_string(n_in) +
                           " disagrees with base function arity " + std::to_string(bf->arity));
    }
    auto it = group_by_base_.find(parsed.base);
    if (it == group_by_base_.end()) {
      const auto gi = static_cast<std::uint32_t>(groups_.size());
      groups_.emplace_back(parsed.base, bf->func, bf->arity);
      it = group_by_base_.emplace(parsed.base, gi).first;
    }
    groups_[it->second].add_cell_index(i);
  }

  for (CellGroup& g : groups_) g.sort_by_drive(cells_);
  return Status();
}

std::optional<std::uint32_t> Library::find_group(std::string_view base_name) const {
  const auto it = group_by_base_.find(std::string(base_name));
  if (it == group_by_base_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> Library::find_group(netlist::GateFunc func,
                                                 std::size_t arity) const {
  for (std::uint32_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].func() == func && groups_[i].arity() == arity) return i;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> Library::find_cell(std::string_view name) const {
  const auto it = cell_by_name_.find(std::string(name));
  if (it == cell_by_name_.end()) return std::nullopt;
  return it->second;
}

const Cell& Library::cell_for(std::uint32_t group_index, std::uint16_t size_index) const {
  const CellGroup& g = groups_.at(group_index);
  return cells_[g.sizes()[size_index]];
}

std::size_t Library::max_arity() const {
  std::size_t m = 0;
  for (const CellGroup& g : groups_) m = std::max(m, g.arity());
  return m;
}

ParsedCellName parse_cell_name(std::string_view name) {
  ParsedCellName result;
  const auto pos = name.rfind("_X");
  if (pos == std::string_view::npos) {
    result.base = std::string(name);
    return result;
  }
  std::string suffix(name.substr(pos + 2));
  if (suffix.empty()) {
    result.base = std::string(name);
    return result;
  }
  // 'P' encodes a decimal point: X0P5 -> 0.5.
  std::replace(suffix.begin(), suffix.end(), 'P', '.');
  const bool numeric = std::all_of(suffix.begin(), suffix.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) || c == '.';
  });
  if (!numeric) {
    result.base = std::string(name);
    return result;
  }
  result.base = std::string(name.substr(0, pos));
  result.drive = std::stod(suffix);
  return result;
}

}  // namespace statsizer::liberty
