// objective.h is header-only; this TU anchors the target.
#include "opt/objective.h"
