// Deterministic mean-delay gate sizer (TILOS-flavoured greedy): produces the
// paper's "original" starting point — a circuit optimized purely for the mean
// of the longest path, which "will typically exhibit the widest spread in
// performance due to high usage of smaller devices" (paper, Fig. 1
// discussion). Each pass walks the deterministic critical path, locally
// evaluates every available size for each gate on it (accounting for the
// load the new size reflects onto its drivers), commits the improving
// choices, and repeats until the max arrival stops improving.
#pragma once

#include <cstddef>

#include "sta/graph.h"

namespace statsizer::opt {

struct DeterministicSizerOptions {
  std::size_t max_passes = 100;
  double min_gain_ps = 0.05;  ///< improvements below this end the loop
};

struct DeterministicSizerStats {
  std::size_t passes = 0;
  std::size_t resizes = 0;
  double initial_arrival_ps = 0.0;
  double final_arrival_ps = 0.0;
};

/// Sizes the context's netlist for minimum mean delay (in place). The
/// TimingContext is updated; the netlist's size indices hold the result.
DeterministicSizerStats size_for_mean_delay(sta::TimingContext& ctx,
                                            const DeterministicSizerOptions& options = {});

}  // namespace statsizer::opt
