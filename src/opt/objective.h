// The optimization objective (paper eq. 7): a user-weighted sum of mean and
// standard deviation. lambda ranks "relative importance of minimizing
// standard variation against mean of delay" — lambda = 0 degenerates to pure
// mean-delay optimization; the paper evaluates lambda = 3 and 9 and observes
// saturation beyond ~9 (unsystematic variation floor).
#pragma once

#include "sta/graph.h"

namespace statsizer::opt {

struct Objective {
  double lambda = 3.0;

  [[nodiscard]] double cost(double mean_ps, double sigma_ps) const {
    return mean_ps + lambda * sigma_ps;
  }
  [[nodiscard]] double cost(const sta::NodeMoments& m) const {
    return cost(m.mean_ps, m.sigma_ps);
  }
};

/// Point-in-time summary of a circuit used by the flow and the benches.
struct CircuitStats {
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  double area_um2 = 0.0;

  [[nodiscard]] double sigma_over_mu() const {
    return mean_ps > 0.0 ? sigma_ps / mean_ps : 0.0;
  }
};

}  // namespace statsizer::opt
