#include "opt/wnss.h"

#include <algorithm>
#include <cmath>

#include "fassta/clark.h"

namespace statsizer::opt {

using netlist::GateId;
using sta::NodeMoments;

bool more_responsible(const NodeMoments& a, const NodeMoments& b, double c_a, double c_b,
                      const WnssOptions& options) {
  const int dom = fassta::dominance(a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps,
                                    options.dominance_threshold);
  if (dom > 0) return true;
  if (dom < 0) return false;
  // Neither dominates: rank by sensitivity of Var(max) to each input's mean
  // (with the coupled sigma step).
  const double sens_a = fassta::max_var_sensitivity_mu_a(
      a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps, options.fd_step_fraction, c_a,
      options.use_fast_clark);
  const double sens_b = fassta::max_var_sensitivity_mu_a(
      b.mean_ps, b.sigma_ps, a.mean_ps, a.sigma_ps, options.fd_step_fraction, c_b,
      options.use_fast_clark);
  return sens_a >= sens_b;
}

namespace {

/// Coupling coefficient for a node: how sigma tracks mean along paths ending
/// at it. For sizable gates this is the variation model's coefficient at the
/// gate's drive; for PIs/constants there is no variation to couple.
double coupling_of(const sta::TimingContext& ctx, GateId id) {
  if (!ctx.has_cell(id)) return 0.0;
  return ctx.variation().mean_to_sigma_coeff(ctx.drive(id));
}

}  // namespace

WnssTrace trace_wnss(const sta::TimingContext& ctx, std::span<const NodeMoments> moments,
                     const WnssOptions& options) {
  const auto& nl = ctx.netlist();
  WnssTrace trace;
  if (nl.outputs().empty()) return trace;

  // Tournament over primary outputs: which one drives the circuit variance?
  GateId winner = nl.outputs()[0].driver;
  for (std::size_t i = 1; i < nl.outputs().size(); ++i) {
    const GateId challenger = nl.outputs()[i].driver;
    if (challenger == winner) continue;
    if (!more_responsible(moments[winner], moments[challenger], coupling_of(ctx, winner),
                          coupling_of(ctx, challenger), options)) {
      winner = challenger;
    }
  }
  trace.critical_output = winner;

  // Walk back to a primary input, picking the most responsible fanin at each
  // gate. Comparisons use the arrival *through each arc* (fanin arrival plus
  // the arc's delay RV) — the quantities that actually enter the node's max.
  GateId cursor = winner;
  while (true) {
    const auto& g = nl.gate(cursor);
    if (!ctx.has_cell(cursor)) break;  // reached a PI or constant
    trace.path.push_back(cursor);
    if (g.fanins.empty()) break;

    const auto through = [&](std::size_t i) {
      const NodeMoments& in = moments[g.fanins[i]];
      const double d = ctx.arc_delay_ps(cursor, i);
      const double s = ctx.arc_sigma_ps(cursor, i);
      return NodeMoments{in.mean_ps + d, std::sqrt(in.sigma_ps * in.sigma_ps + s * s)};
    };

    std::size_t best = 0;
    NodeMoments best_m = through(0);
    for (std::size_t i = 1; i < g.fanins.size(); ++i) {
      const NodeMoments m = through(i);
      const double c_best = coupling_of(ctx, g.fanins[best]);
      const double c_i = coupling_of(ctx, g.fanins[i]);
      if (!more_responsible(best_m, m, c_best, c_i, options)) {
        best = i;
        best_m = m;
      }
    }
    cursor = g.fanins[best];
  }

  std::reverse(trace.path.begin(), trace.path.end());
  return trace;
}

}  // namespace statsizer::opt
