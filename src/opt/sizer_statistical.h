// StatisticalGreedy — the paper's algorithm (Fig. 2), verbatim structure:
//
//   repeat {
//     FULLSSTA                         // accurate outer engine
//     trace WNSS path
//     foreach gate g on the path {
//       extract subcircuit S around g  // 2 levels of TFI/TFO
//       foreach available size of g:
//         score S with FASSTA + eq. 7  // fast inner engine
//       schedule the best size
//     }
//     resize scheduled gates           // batch commit
//   } until constraints met or no further improvement
//
// "No further improvement" is enforced on the *global* FULLSSTA objective:
// a batch that fails to improve it is rolled back and retried as the single
// most-promising resize; if that fails too, the loop ends. This guards
// against oscillation, which batch-greedy sizers are prone to.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fassta/engine.h"
#include "opt/objective.h"
#include "opt/wnss.h"
#include "ssta/fullssta.h"

namespace statsizer::opt {

/// How candidate sizes are scored in the inner loop.
enum class InnerScoring {
  /// One full FASSTA pass per candidate (O(E), microseconds): sees the
  /// max-over-all-paths behaviour of the objective. Default — robust.
  kGlobalFassta,
  /// The paper's literal formulation: FASSTA on a k-level subcircuit window,
  /// outputs projected through downstream potentials. Cheaper per candidate
  /// but blind to breadth effects; kept for the window-depth ablation.
  kSubcircuit,
};

struct StatisticalSizerOptions {
  Objective objective;                     ///< eq. 7 weight lambda
  InnerScoring scoring = InnerScoring::kGlobalFassta;
  unsigned subcircuit_levels = 2;          ///< TFI/TFO depth (paper: 2)
  std::size_t max_iterations = 120;
  double min_improvement = 1e-3;           ///< required global cost decrease (ps)
  /// Planning threshold: a candidate enters the resize plan only if the fast
  /// engine predicts at least this much cost gain (ps). Set above the
  /// FASSTA-vs-FULLSSTA disagreement noise so plans contain confident moves;
  /// acceptance still uses min_improvement against the accurate engine.
  double min_predicted_gain = 0.3;
  ssta::FullSstaOptions fullssta;          ///< outer-engine controls
  fassta::EngineOptions fassta;            ///< inner-engine controls
  WnssOptions wnss;                        ///< tracer controls
  /// Optional constraint mode: stop as soon as sigma reaches this target.
  std::optional<double> target_sigma_ps;

  // -- convergence rescue (bounded exact-engine move sources) -----------------
  /// When the fast-engine plan yields nothing the accurate engine confirms,
  /// up to this many WNSS-path gates are re-swept with FULLSSTA scoring.
  std::size_t exact_fallback_gate_limit = 16;
  /// On heavily balanced fabrics (e.g. wide XOR trees) a single WNSS path per
  /// iteration cannot dent the max over thousands of near-identical paths.
  /// When even the exact path sweep stalls, up to max_global_sweeps times per
  /// run the optimizer sweeps the top gates netlist-wide ranked by arc sigma
  /// (the fattest delay contributors, wherever they sit).
  std::size_t global_sweep_gate_limit = 24;
  std::size_t max_global_sweeps = 4;
  /// Coordinated move for balanced fabrics: when every single-gate move
  /// fails, try bumping whole gate populations (all gates, then the
  /// below-median-drive half) one size up and keep the bump iff the accurate
  /// engine confirms it. sigma ~ 1/drive makes this the natural fabric-wide
  /// variance lever; single-gate greedy cannot express it.
  std::size_t max_uniform_bumps = 6;
};

struct StatisticalSizerStats {
  std::size_t iterations = 0;
  std::size_t resizes = 0;
  std::size_t fassta_evaluations = 0;
  CircuitStats initial;
  CircuitStats final_;
  bool constraints_met = false;
};

/// Runs StatisticalGreedy in place on the context's netlist.
StatisticalSizerStats size_statistically(sta::TimingContext& ctx,
                                         const StatisticalSizerOptions& options = {});

}  // namespace statsizer::opt
