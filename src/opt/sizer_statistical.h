// StatisticalGreedy — the paper's algorithm (Fig. 2), verbatim structure:
//
//   repeat {
//     FULLSSTA                         // accurate outer engine
//     trace WNSS path
//     foreach gate g on the path {
//       extract subcircuit S around g  // 2 levels of TFI/TFO
//       foreach available size of g:
//         score S with FASSTA + eq. 7  // fast inner engine
//       schedule the best size
//     }
//     resize scheduled gates           // batch commit
//   } until constraints met or no further improvement
//
// "No further improvement" is enforced on the *global* FULLSSTA objective:
// a batch that fails to improve it is rolled back and retried as the single
// most-promising resize; if that fails too, the loop ends. This guards
// against oscillation, which batch-greedy sizers are prone to.
//
// Concurrency: the per-gate × per-size FASSTA candidate scoring — the runtime
// hot path — fans out across util::ThreadPool::shared() when
// StatisticalSizerOptions::threads != 1. Workers only read the const
// TimingContext snapshot and write disjoint slots of a score array, so the
// chosen plan, the whole optimization trajectory, StatisticalSizerStats, and
// the final sizes are bitwise-identical for any thread count (the same
// contract as the parallel Monte-Carlo engine; see docs/ARCHITECTURE.md,
// "Concurrency & determinism contracts").
//
// The accurate confirmations (batch acceptance, the singles retry, the
// rescue sweeps) run through the timing::Analyzer what-if API: each trial is
// a Speculation scored against the committed base without touching the
// netlist or the snapshot. When the confirm engine supports concurrent
// speculations (FULLSSTA's incremental fanout-cone overlay does), a whole
// wave of pending trials is scored in parallel and commits are applied
// serially in the fixed gain order — the decisions, and therefore every
// result, are bitwise-identical to the serial trial loop for any thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fassta/engine.h"
#include "opt/objective.h"
#include "opt/wnss.h"
#include "ssta/fullssta.h"
#include "ssta/isle.h"

namespace statsizer::opt {

/// How candidate sizes are scored in the inner loop.
enum class InnerScoring {
  /// One full FASSTA pass per candidate (O(E), microseconds): sees the
  /// max-over-all-paths behaviour of the objective. Default — robust.
  kGlobalFassta,
  /// The paper's literal formulation: FASSTA on a k-level subcircuit window,
  /// outputs projected through downstream potentials. Cheaper per candidate
  /// but blind to breadth effects; kept for the window-depth ablation.
  kSubcircuit,
};

struct StatisticalSizerOptions {
  Objective objective;                     ///< eq. 7 weight lambda
  InnerScoring scoring = InnerScoring::kGlobalFassta;
  unsigned subcircuit_levels = 2;          ///< TFI/TFO depth (paper: 2)
  /// Worker threads for the inner-loop candidate scoring (and the rescue
  /// paths' fast-engine prescoring). 1 = serial on the calling thread; 0 =
  /// hardware concurrency. Results — trajectory, stats, final sizes — are
  /// bitwise-identical for any value.
  std::size_t threads = 1;
  /// Record every confirmed resize in StatisticalSizerStats::trajectory
  /// (off by default: large runs commit thousands of moves).
  bool record_trajectory = false;
  std::size_t max_iterations = 120;
  double min_improvement = 1e-3;           ///< required global cost decrease (ps)
  /// Planning threshold: a candidate enters the resize plan only if the fast
  /// engine predicts at least this much cost gain (ps). Set above the
  /// FASSTA-vs-FULLSSTA disagreement noise so plans contain confident moves;
  /// acceptance still uses min_improvement against the accurate engine.
  double min_predicted_gain = 0.3;
  ssta::FullSstaOptions fullssta;          ///< outer-engine controls
  fassta::EngineOptions fassta;            ///< inner-engine controls
  WnssOptions wnss;                        ///< tracer controls
  /// Accurate confirmation engine, resolved through timing::make_analyzer.
  /// Must support what-if speculation and per-node moments (WNSS tracing).
  /// Default: the paper's FULLSSTA, whose incremental what-if lets rescue
  /// confirmations score in parallel.
  std::string confirm_engine = "fullssta";
  /// Fast candidate-scoring engine (registry name). "fassta" uses the
  /// specialized zero-allocation kernel (and is required for
  /// InnerScoring::kSubcircuit); any other registered engine scores through
  /// timing::Analyzer speculations.
  std::string score_engine = "fassta";
  /// Optional constraint mode: stop as soon as sigma reaches this target.
  std::optional<double> target_sigma_ps;
  /// Optional constraint mode: stop as soon as the estimated timing yield at
  /// the constraint clock reaches this target (e.g. 0.99). Requires a clock
  /// period — either isle.clock_period_ps or the context's SDC constraint —
  /// and is evaluated with yield_engine at the top of every iteration plus
  /// once on the final state (StatisticalSizerStats::final_yield). A
  /// degenerate estimate (IsleResult::degenerate) never satisfies the
  /// target.
  std::optional<double> target_yield;
  /// Engine for the target_yield evaluations: "isle" (importance sampling,
  /// the default — cheap enough to sit inside the sizing loop) or "mc"
  /// (plain Monte Carlo through the same machinery).
  std::string yield_engine = "isle";
  /// Estimator configuration for the target_yield evaluations. Its threads
  /// field is overridden by `threads` above (results are identical either
  /// way).
  ssta::IsleOptions isle;

  // -- convergence rescue (bounded exact-engine move sources) -----------------
  /// When the fast-engine plan yields nothing the accurate engine confirms,
  /// up to this many WNSS-path gates are re-swept with FULLSSTA scoring.
  std::size_t exact_fallback_gate_limit = 16;
  /// On heavily balanced fabrics (e.g. wide XOR trees) a single WNSS path per
  /// iteration cannot dent the max over thousands of near-identical paths.
  /// When even the exact path sweep stalls, up to max_global_sweeps times per
  /// run the optimizer sweeps the top gates netlist-wide ranked by arc sigma
  /// (the fattest delay contributors, wherever they sit).
  std::size_t global_sweep_gate_limit = 24;
  std::size_t max_global_sweeps = 4;
  /// Coordinated move for balanced fabrics: when every single-gate move
  /// fails, try bumping whole gate populations (all gates, then the
  /// below-median-drive half) one size up and keep the bump iff the accurate
  /// engine confirms it. sigma ~ 1/drive makes this the natural fabric-wide
  /// variance lever; single-gate greedy cannot express it.
  std::size_t max_uniform_bumps = 6;
};

/// Which move source committed a resize (ordered as tried per iteration).
enum class MoveSource : std::uint8_t {
  kPlan,          ///< fast-engine plan, accepted as a batch
  kSingle,        ///< plan retried one-at-a-time after batch rejection
  kExactFallback, ///< accurate sweep of the WNSS path prefix
  kGlobalSweep,   ///< accurate sweep of the fattest arcs netlist-wide
  kUniformBump,   ///< coordinated whole-population upsize
};

/// One confirmed resize (only recorded when options.record_trajectory).
/// A kUniformBump event stands for the whole population move: gate is
/// netlist::kNoGate and the size fields are zero.
struct ResizeEvent {
  std::size_t iteration = 0;
  netlist::GateId gate = netlist::kNoGate;
  std::uint16_t from_size = 0;
  std::uint16_t to_size = 0;
  MoveSource source = MoveSource::kPlan;

  friend bool operator==(const ResizeEvent&, const ResizeEvent&) = default;
};

struct StatisticalSizerStats {
  std::size_t iterations = 0;
  std::size_t resizes = 0;
  /// Inner-scorer candidate evaluations (plan scoring + rescue prescoring).
  /// Counted for whichever score_engine ran — the name reflects the default
  /// fassta kernel.
  std::size_t fassta_evaluations = 0;
  /// Resizes confirmed by the exact rescue sweeps (fallback + global).
  std::size_t exact_resizes = 0;
  /// Netlist-wide rescue sweeps run (bounded by max_global_sweeps).
  std::size_t global_sweeps = 0;
  /// Population-bump rounds attempted (bounded by max_uniform_bumps).
  std::size_t uniform_bump_rounds = 0;
  /// Every confirmed resize in commit order (only if record_trajectory).
  std::vector<ResizeEvent> trajectory;
  CircuitStats initial;
  CircuitStats final_;
  bool constraints_met = false;
  /// Yield of the final state at the constraint clock (only when
  /// target_yield was set; -1 otherwise). Draws are totalled over every
  /// in-loop evaluation plus the final one.
  double final_yield = -1.0;
  double final_yield_se = 0.0;
  std::size_t yield_draws = 0;
  bool yield_degenerate = false;
};

/// Runs StatisticalGreedy in place on the context's netlist. Mutates the
/// netlist's size indices and the timing snapshot; not safe to call
/// concurrently on the same context. Internal candidate scoring fans out
/// across options.threads workers with thread-count-invariant results (see
/// the header comment).
StatisticalSizerStats size_statistically(sta::TimingContext& ctx,
                                         const StatisticalSizerOptions& options = {});

}  // namespace statsizer::opt
