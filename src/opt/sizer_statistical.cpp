#include "opt/sizer_statistical.h"

#include <algorithm>
#include <cmath>

#include "netlist/subcircuit.h"
#include "util/log.h"

namespace statsizer::opt {

using netlist::GateId;

namespace {

/// One planned resize with its locally-predicted cost improvement.
struct PlannedResize {
  GateId gate = netlist::kNoGate;
  std::uint16_t new_size = 0;
  double predicted_gain = 0.0;
};

CircuitStats stats_of(const sta::TimingContext& ctx, const ssta::FullSstaResult& full) {
  CircuitStats s;
  s.mean_ps = full.mean_ps;
  s.sigma_ps = full.sigma_ps;
  s.area_um2 = ctx.area_um2();
  return s;
}

}  // namespace

StatisticalSizerStats size_statistically(sta::TimingContext& ctx,
                                         const StatisticalSizerOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const auto& lib = ctx.library();
  const Objective& obj = options.objective;
  const fassta::Engine engine(ctx, options.fassta);

  StatisticalSizerStats stats;

  ctx.update();
  ssta::FullSstaResult full = ssta::run_fullssta(ctx, options.fullssta);
  stats.initial = stats_of(ctx, full);
  double global_cost = obj.cost(full.mean_ps, full.sigma_ps);
  std::size_t global_sweeps = 0;
  std::size_t uniform_bumps = 0;

  // Accurate cost of the context's current state.
  const auto accurate_cost = [&]() {
    ctx.update();
    const ssta::FullSstaResult r = ssta::run_fullssta(ctx, options.fullssta);
    return obj.cost(r.mean_ps, r.sigma_ps);
  };

  for (stats.iterations = 0; stats.iterations < options.max_iterations; ++stats.iterations) {
    if (options.target_sigma_ps.has_value() && full.sigma_ps <= *options.target_sigma_ps) {
      stats.constraints_met = true;
      break;
    }

    const WnssTrace trace = trace_wnss(ctx, full.node, options.wnss);
    if (trace.path.empty()) break;

    // Downstream statistical potential per node (only the subcircuit scoring
    // mode needs it; see engine.h on window truncation).
    std::vector<sta::NodeMoments> downstream;
    if (options.scoring == InnerScoring::kSubcircuit) {
      downstream = engine.compute_downstream();
    }

    // ---- move source 1: fast-engine plan over the WNSS path ---------------
    std::vector<PlannedResize> plan;
    for (const GateId g : trace.path) {
      const auto& gate = nl.gate(g);
      const auto& group = lib.group(gate.cell_group);

      const auto score = [&](const liberty::Cell& cell) {
        ++stats.fassta_evaluations;
        if (options.scoring == InnerScoring::kGlobalFassta) {
          return obj.cost(engine.run_with_candidate(g, cell));
        }
        const netlist::Subcircuit sc = netlist::extract_subcircuit(
            nl, g, options.subcircuit_levels, options.subcircuit_levels);
        return engine.evaluate_candidate(sc, full.node, downstream, g, cell, obj.lambda)
            .cost;
      };

      const double current_cost = score(ctx.cell(g));
      std::uint16_t best_size = gate.size_index;
      double best_cost = current_cost;
      for (std::uint16_t s = 0; s < group.size_count(); ++s) {
        if (s == gate.size_index) continue;
        const double c = score(lib.cell_for(gate.cell_group, s));
        if (c < best_cost - options.min_predicted_gain) {
          best_cost = c;
          best_size = s;
        }
      }
      if (best_size != gate.size_index) {
        plan.push_back(PlannedResize{g, best_size, current_cost - best_cost});
      }
    }

    std::size_t accepted = 0;
    double accepted_cost = global_cost;

    if (!plan.empty()) {
      // Batch commit, verified against the accurate global objective.
      const auto before_sizes = nl.sizes();
      for (const PlannedResize& r : plan) nl.gate(r.gate).size_index = r.new_size;
      const double batch_cost = accurate_cost();
      if (batch_cost < global_cost - options.min_improvement) {
        accepted = plan.size();
        accepted_cost = batch_cost;
      } else {
        // Roll back, then retry one at a time in descending predicted gain.
        STATSIZER_DEBUG() << "iter " << stats.iterations << ": batch of " << plan.size()
                          << " rejected (" << global_cost << " -> " << batch_cost
                          << "), trying singles";
        nl.set_sizes(before_sizes);
        std::sort(plan.begin(), plan.end(),
                  [](const PlannedResize& a, const PlannedResize& b) {
                    return a.predicted_gain > b.predicted_gain;
                  });
        for (const PlannedResize& r : plan) {
          const std::uint16_t keep = nl.gate(r.gate).size_index;
          nl.gate(r.gate).size_index = r.new_size;
          const double c = accurate_cost();
          if (c < accepted_cost - options.min_improvement) {
            accepted_cost = c;
            ++accepted;
          } else {
            nl.gate(r.gate).size_index = keep;
          }
        }
      }
    }

    // Bounded exact-engine sweep over a gate list: every size of each gate,
    // keeping moves the accurate engine confirms.
    const auto exact_sweep = [&](std::span<const GateId> gates) {
      std::size_t kept = 0;
      for (const GateId g : gates) {
        const auto& group = lib.group(nl.gate(g).cell_group);
        for (std::uint16_t s = 0; s < group.size_count(); ++s) {
          if (s == nl.gate(g).size_index) continue;
          const std::uint16_t keep = nl.gate(g).size_index;
          nl.gate(g).size_index = s;
          const double c = accurate_cost();
          if (c < accepted_cost - options.min_improvement) {
            accepted_cost = c;
            ++kept;
          } else {
            nl.gate(g).size_index = keep;
          }
        }
      }
      return kept;
    };

    // ---- move source 2: exact sweep of the path prefix ---------------------
    if (accepted == 0) {
      // The fast engine's plan may have filtered out moves the accurate
      // engine would take (engine disagreement). This implements the paper's
      // "until ... no further improvement" termination on the *accurate*
      // objective, with a bounded budget.
      const std::size_t n_path =
          std::min(trace.path.size(), options.exact_fallback_gate_limit);
      accepted += exact_sweep(std::span<const GateId>(trace.path.data(), n_path));
    }

    // ---- move source 3: netlist-wide sweep of the fattest arcs -------------
    if (accepted == 0 && global_sweeps < options.max_global_sweeps) {
      ++global_sweeps;
      std::vector<GateId> fat;
      for (GateId g = 0; g < nl.node_count(); ++g) {
        if (ctx.has_cell(g)) fat.push_back(g);
      }
      const auto worst_sigma = [&](GateId g) {
        double s = 0.0;
        for (std::size_t i = 0; i < nl.gate(g).fanins.size(); ++i) {
          s = std::max(s, ctx.arc_sigma_ps(g, i));
        }
        return s;
      };
      std::sort(fat.begin(), fat.end(),
                [&](GateId a, GateId b) { return worst_sigma(a) > worst_sigma(b); });
      fat.resize(std::min(fat.size(), options.global_sweep_gate_limit));
      accepted += exact_sweep(fat);
      STATSIZER_DEBUG() << "iter " << stats.iterations << ": global sweep kept "
                        << accepted << " resizes";
    }

    // ---- move source 4: coordinated population bump -------------------------
    // Balanced fabrics (wide XOR trees) spread the output variance over
    // thousands of near-identical paths; no single-gate move registers, but a
    // whole-population upsize halves sigma at once (sigma ~ 1/drive).
    if (accepted == 0 && uniform_bumps < options.max_uniform_bumps) {
      ++uniform_bumps;
      const auto try_bump = [&](bool only_small) {
        const auto before = nl.sizes();
        double median_drive = 1.0;
        if (only_small) {
          std::vector<double> drives;
          for (GateId g = 0; g < nl.node_count(); ++g) {
            if (ctx.has_cell(g)) drives.push_back(ctx.drive(g));
          }
          std::sort(drives.begin(), drives.end());
          if (!drives.empty()) median_drive = drives[drives.size() / 2];
        }
        bool any = false;
        for (GateId g = 0; g < nl.node_count(); ++g) {
          if (!ctx.has_cell(g)) continue;
          if (only_small && ctx.drive(g) > median_drive) continue;
          const auto& group = lib.group(nl.gate(g).cell_group);
          if (nl.gate(g).size_index + 1u < group.size_count()) {
            ++nl.gate(g).size_index;
            any = true;
          }
        }
        if (!any) return false;
        const double c = accurate_cost();
        if (c < accepted_cost - options.min_improvement) {
          accepted_cost = c;
          return true;
        }
        nl.set_sizes(before);
        return false;
      };
      if (try_bump(/*only_small=*/false) || try_bump(/*only_small=*/true)) {
        ++accepted;
        STATSIZER_DEBUG() << "iter " << stats.iterations << ": uniform bump accepted";
      }
    }

    if (accepted == 0) {
      ctx.update();
      break;  // converged: no confirmed move from any source
    }
    stats.resizes += accepted;

    ctx.update();
    full = ssta::run_fullssta(ctx, options.fullssta);
    global_cost = obj.cost(full.mean_ps, full.sigma_ps);
    STATSIZER_DEBUG() << "iter " << stats.iterations << ": cost " << global_cost
                      << " (mu " << full.mean_ps << ", sigma " << full.sigma_ps << ")";
  }

  // Final accurate analysis for the report (netlist state is already final).
  ctx.update();
  full = ssta::run_fullssta(ctx, options.fullssta);
  stats.final_ = stats_of(ctx, full);
  if (options.target_sigma_ps.has_value() && full.sigma_ps <= *options.target_sigma_ps) {
    stats.constraints_met = true;
  }
  return stats;
}

}  // namespace statsizer::opt
