#include "opt/sizer_statistical.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "netlist/subcircuit.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace statsizer::opt {

using netlist::GateId;

namespace {

/// One planned resize with its locally-predicted cost improvement.
struct PlannedResize {
  GateId gate = netlist::kNoGate;
  std::uint16_t new_size = 0;
  double predicted_gain = 0.0;
};

/// One (gate, candidate size) scoring unit for the parallel kernel.
struct CandidateJob {
  GateId gate = netlist::kNoGate;
  std::uint16_t size = 0;
};

/// Flattened gate × every-library-size job list over a gate set. The jobs for
/// gates[i] occupy [offsets[i], offsets[i] + size_count) in library size
/// order, so a score array indexed like `jobs` can be read back per gate.
struct CandidateJobs {
  std::vector<CandidateJob> jobs;
  std::vector<std::size_t> offsets;
};

CandidateJobs list_candidates(const netlist::Netlist& nl, const liberty::Library& lib,
                              std::span<const GateId> gates) {
  CandidateJobs out;
  out.offsets.reserve(gates.size());
  for (const GateId g : gates) {
    out.offsets.push_back(out.jobs.size());
    const auto& group = lib.group(nl.gate(g).cell_group);
    for (std::uint16_t s = 0; s < group.size_count(); ++s) {
      out.jobs.push_back(CandidateJob{g, s});
    }
  }
  return out;
}

/// The parallel candidate-scoring kernel shared by the plan stage and the
/// rescue sweeps' prescoring. Fans the fast-engine evaluations across
/// options.threads workers: every worker reads the same const TimingContext
/// snapshot through the shared Engine and reuses a private fassta scratch;
/// slot i of the result is written exactly once by whichever worker draws it,
/// and the scores themselves do not depend on evaluation order — so the
/// returned array is bitwise-identical for any thread count.
std::vector<double> score_candidates(const sta::TimingContext& ctx,
                                     const fassta::Engine& engine,
                                     const StatisticalSizerOptions& options,
                                     InnerScoring scoring,
                                     std::span<const CandidateJob> jobs,
                                     std::span<const sta::NodeMoments> boundary,
                                     std::span<const sta::NodeMoments> downstream) {
  const auto& nl = ctx.netlist();
  const auto& lib = ctx.library();
  const Objective& obj = options.objective;
  std::vector<double> costs(jobs.size());
  // Chunked so one scratch (and, in subcircuit mode, one window extraction
  // per job) amortizes across several candidates; chunk geometry is a pure
  // function of the job count, never of the thread count.
  constexpr std::size_t kChunk = 8;
  util::parallel_for(
      jobs.size(), kChunk, options.threads,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        fassta::Engine::Scratch scratch;
        netlist::Subcircuit sc;
        GateId sc_gate = netlist::kNoGate;
        for (std::size_t i = begin; i < end; ++i) {
          const CandidateJob& job = jobs[i];
          const liberty::Cell& cell = lib.cell_for(nl.gate(job.gate).cell_group, job.size);
          if (scoring == InnerScoring::kGlobalFassta) {
            costs[i] = obj.cost(engine.run_with_candidate(job.gate, cell, scratch));
          } else {
            // A gate's jobs are contiguous, so one window extraction serves
            // every size of the gate (the window depends only on the gate).
            if (job.gate != sc_gate) {
              sc = netlist::extract_subcircuit(nl, job.gate, options.subcircuit_levels,
                                               options.subcircuit_levels);
              sc_gate = job.gate;
            }
            costs[i] = engine
                           .evaluate_candidate(sc, boundary, downstream, job.gate, cell,
                                               obj.lambda, scratch)
                           .cost;
          }
        }
      });
  return costs;
}

CircuitStats stats_of(const sta::TimingContext& ctx, const ssta::FullSstaResult& full) {
  CircuitStats s;
  s.mean_ps = full.mean_ps;
  s.sigma_ps = full.sigma_ps;
  s.area_um2 = ctx.area_um2();
  return s;
}

}  // namespace

StatisticalSizerStats size_statistically(sta::TimingContext& ctx,
                                         const StatisticalSizerOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const auto& lib = ctx.library();
  const Objective& obj = options.objective;
  const fassta::Engine engine(ctx, options.fassta);

  StatisticalSizerStats stats;

  ctx.update();
  ssta::FullSstaResult full = ssta::run_fullssta(ctx, options.fullssta);
  stats.initial = stats_of(ctx, full);
  double global_cost = obj.cost(full.mean_ps, full.sigma_ps);

  // Accurate cost of the context's current state.
  const auto accurate_cost = [&]() {
    ctx.update();
    const ssta::FullSstaResult r = ssta::run_fullssta(ctx, options.fullssta);
    return obj.cost(r.mean_ps, r.sigma_ps);
  };

  const auto record = [&](GateId gate, std::uint16_t from, std::uint16_t to,
                          MoveSource source) {
    if (!options.record_trajectory) return;
    stats.trajectory.push_back(ResizeEvent{stats.iterations, gate, from, to, source});
  };

  for (stats.iterations = 0; stats.iterations < options.max_iterations; ++stats.iterations) {
    if (options.target_sigma_ps.has_value() && full.sigma_ps <= *options.target_sigma_ps) {
      stats.constraints_met = true;
      break;
    }

    const WnssTrace trace = trace_wnss(ctx, full.node, options.wnss);
    if (trace.path.empty()) break;

    // Downstream statistical potential per node (only the subcircuit scoring
    // mode needs it; see engine.h on window truncation).
    std::vector<sta::NodeMoments> downstream;
    if (options.scoring == InnerScoring::kSubcircuit) {
      downstream = engine.compute_downstream();
    }

    // ---- move source 1: fast-engine plan over the WNSS path ---------------
    // Every (gate, size) pair on the path is scored concurrently against the
    // frozen snapshot; the plan itself is then built serially from the score
    // array, which keeps it independent of the thread count.
    const CandidateJobs cand = list_candidates(nl, lib, trace.path);
    stats.fassta_evaluations += cand.jobs.size();
    const std::vector<double> costs = score_candidates(
        ctx, engine, options, options.scoring, cand.jobs, full.node, downstream);

    std::vector<PlannedResize> plan;
    for (std::size_t gi = 0; gi < trace.path.size(); ++gi) {
      const GateId g = trace.path[gi];
      const auto& gate = nl.gate(g);
      const auto& group = lib.group(gate.cell_group);
      const std::size_t base = cand.offsets[gi];

      const double current_cost = costs[base + gate.size_index];
      std::uint16_t best_size = gate.size_index;
      double best_cost = current_cost;
      for (std::uint16_t s = 0; s < group.size_count(); ++s) {
        if (s == gate.size_index) continue;
        const double c = costs[base + s];
        if (c < best_cost - options.min_predicted_gain) {
          best_cost = c;
          best_size = s;
        }
      }
      if (best_size != gate.size_index) {
        plan.push_back(PlannedResize{g, best_size, current_cost - best_cost});
      }
    }

    std::size_t accepted = 0;
    double accepted_cost = global_cost;

    if (!plan.empty()) {
      // Batch commit, verified against the accurate global objective.
      const auto before_sizes = nl.sizes();
      for (const PlannedResize& r : plan) nl.gate(r.gate).size_index = r.new_size;
      const double batch_cost = accurate_cost();
      if (batch_cost < global_cost - options.min_improvement) {
        accepted = plan.size();
        accepted_cost = batch_cost;
        for (const PlannedResize& r : plan) {
          record(r.gate, before_sizes[r.gate], r.new_size, MoveSource::kPlan);
        }
      } else {
        // Roll back, then retry one at a time in descending predicted gain.
        STATSIZER_DEBUG() << "iter " << stats.iterations << ": batch of " << plan.size()
                          << " rejected (" << global_cost << " -> " << batch_cost
                          << "), trying singles";
        nl.set_sizes(before_sizes);
        std::sort(plan.begin(), plan.end(),
                  [](const PlannedResize& a, const PlannedResize& b) {
                    return a.predicted_gain > b.predicted_gain;
                  });
        for (const PlannedResize& r : plan) {
          const std::uint16_t keep = nl.gate(r.gate).size_index;
          nl.gate(r.gate).size_index = r.new_size;
          const double c = accurate_cost();
          if (c < accepted_cost - options.min_improvement) {
            accepted_cost = c;
            ++accepted;
            record(r.gate, keep, r.new_size, MoveSource::kSingle);
          } else {
            nl.gate(r.gate).size_index = keep;
          }
        }
      }
    }

    // Bounded exact-engine sweep over a gate list: the fast engine prescores
    // every (gate, size) candidate in parallel — the same kernel as the plan
    // stage — to order the trials by predicted gain; the accurate engine then
    // serially confirms every candidate in that fixed order (each trial's
    // basis includes the moves confirmed before it, which is why this stage
    // cannot fan out). The prescore only orders, never filters: engine
    // disagreement is exactly what this rescue exists for.
    const auto exact_sweep = [&](std::span<const GateId> gates, MoveSource source) {
      // Re-sync the snapshot: a rejected trial above leaves the timing state
      // one update behind the (reverted) netlist.
      ctx.update();
      const CandidateJobs sweep = list_candidates(nl, lib, gates);
      stats.fassta_evaluations += sweep.jobs.size();
      const std::vector<double> prescores =
          score_candidates(ctx, engine, options, InnerScoring::kGlobalFassta, sweep.jobs,
                           full.node, {});

      struct RescueCandidate {
        GateId gate = netlist::kNoGate;
        std::uint16_t size = 0;
        double gain = 0.0;
        std::size_t job_index = 0;  ///< deterministic tiebreak (gate order, size)
      };
      std::vector<RescueCandidate> ordered;
      for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const GateId g = gates[gi];
        const std::size_t base = sweep.offsets[gi];
        const std::uint16_t current = nl.gate(g).size_index;
        const auto& group = lib.group(nl.gate(g).cell_group);
        for (std::uint16_t s = 0; s < group.size_count(); ++s) {
          if (s == current) continue;
          ordered.push_back(
              RescueCandidate{g, s, prescores[base + current] - prescores[base + s],
                              base + s});
        }
      }
      std::sort(ordered.begin(), ordered.end(),
                [](const RescueCandidate& a, const RescueCandidate& b) {
                  if (a.gain != b.gain) return a.gain > b.gain;
                  return a.job_index < b.job_index;
                });

      std::size_t kept = 0;
      for (const RescueCandidate& c : ordered) {
        const std::uint16_t keep = nl.gate(c.gate).size_index;
        if (c.size == keep) continue;  // an earlier confirm moved the gate here
        nl.gate(c.gate).size_index = c.size;
        const double cost = accurate_cost();
        if (cost < accepted_cost - options.min_improvement) {
          accepted_cost = cost;
          ++kept;
          record(c.gate, keep, c.size, source);
        } else {
          nl.gate(c.gate).size_index = keep;
        }
      }
      stats.exact_resizes += kept;
      return kept;
    };

    // ---- move source 2: exact sweep of the path prefix ---------------------
    if (accepted == 0) {
      // The fast engine's plan may have filtered out moves the accurate
      // engine would take (engine disagreement). This implements the paper's
      // "until ... no further improvement" termination on the *accurate*
      // objective, with a bounded budget.
      const std::size_t n_path =
          std::min(trace.path.size(), options.exact_fallback_gate_limit);
      accepted += exact_sweep(std::span<const GateId>(trace.path.data(), n_path),
                              MoveSource::kExactFallback);
    }

    // ---- move source 3: netlist-wide sweep of the fattest arcs -------------
    if (accepted == 0 && stats.global_sweeps < options.max_global_sweeps) {
      ++stats.global_sweeps;
      // Re-sync before ranking: a rejected trial above leaves the snapshot
      // one update behind the (reverted) netlist, which would mis-rank the
      // arc sigmas here.
      ctx.update();
      std::vector<GateId> fat;
      for (GateId g = 0; g < nl.node_count(); ++g) {
        if (ctx.has_cell(g)) fat.push_back(g);
      }
      const auto worst_sigma = [&](GateId g) {
        double s = 0.0;
        for (std::size_t i = 0; i < nl.gate(g).fanins.size(); ++i) {
          s = std::max(s, ctx.arc_sigma_ps(g, i));
        }
        return s;
      };
      std::sort(fat.begin(), fat.end(),
                [&](GateId a, GateId b) { return worst_sigma(a) > worst_sigma(b); });
      fat.resize(std::min(fat.size(), options.global_sweep_gate_limit));
      accepted += exact_sweep(fat, MoveSource::kGlobalSweep);
      STATSIZER_DEBUG() << "iter " << stats.iterations << ": global sweep kept "
                        << accepted << " resizes";
    }

    // ---- move source 4: coordinated population bump -------------------------
    // Balanced fabrics (wide XOR trees) spread the output variance over
    // thousands of near-identical paths; no single-gate move registers, but a
    // whole-population upsize halves sigma at once (sigma ~ 1/drive).
    if (accepted == 0 && stats.uniform_bump_rounds < options.max_uniform_bumps) {
      ++stats.uniform_bump_rounds;
      ctx.update();  // same re-sync: the drive median below reads the snapshot
      const auto try_bump = [&](bool only_small) {
        const auto before = nl.sizes();
        double median_drive = 1.0;
        if (only_small) {
          std::vector<double> drives;
          for (GateId g = 0; g < nl.node_count(); ++g) {
            if (ctx.has_cell(g)) drives.push_back(ctx.drive(g));
          }
          std::sort(drives.begin(), drives.end());
          if (!drives.empty()) median_drive = drives[drives.size() / 2];
        }
        bool any = false;
        for (GateId g = 0; g < nl.node_count(); ++g) {
          if (!ctx.has_cell(g)) continue;
          if (only_small && ctx.drive(g) > median_drive) continue;
          const auto& group = lib.group(nl.gate(g).cell_group);
          if (nl.gate(g).size_index + 1u < group.size_count()) {
            ++nl.gate(g).size_index;
            any = true;
          }
        }
        if (!any) return false;
        const double c = accurate_cost();
        if (c < accepted_cost - options.min_improvement) {
          accepted_cost = c;
          return true;
        }
        nl.set_sizes(before);
        return false;
      };
      if (try_bump(/*only_small=*/false) || try_bump(/*only_small=*/true)) {
        ++accepted;
        record(netlist::kNoGate, 0, 0, MoveSource::kUniformBump);
        STATSIZER_DEBUG() << "iter " << stats.iterations << ": uniform bump accepted";
      }
    }

    if (accepted == 0) {
      ctx.update();
      break;  // converged: no confirmed move from any source
    }
    stats.resizes += accepted;

    ctx.update();
    full = ssta::run_fullssta(ctx, options.fullssta);
    global_cost = obj.cost(full.mean_ps, full.sigma_ps);
    STATSIZER_DEBUG() << "iter " << stats.iterations << ": cost " << global_cost
                      << " (mu " << full.mean_ps << ", sigma " << full.sigma_ps << ")";
  }

  // Final accurate analysis for the report (netlist state is already final).
  ctx.update();
  full = ssta::run_fullssta(ctx, options.fullssta);
  stats.final_ = stats_of(ctx, full);
  if (options.target_sigma_ps.has_value() && full.sigma_ps <= *options.target_sigma_ps) {
    stats.constraints_met = true;
  }
  return stats;
}

}  // namespace statsizer::opt
