#include "opt/sizer_statistical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>

#include "netlist/subcircuit.h"
#include "timing/analyzer.h"
#include "util/exec.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace statsizer::opt {

using netlist::GateId;

namespace {

/// One planned resize with its locally-predicted cost improvement.
struct PlannedResize {
  GateId gate = netlist::kNoGate;
  std::uint16_t new_size = 0;
  double predicted_gain = 0.0;
};

/// One (gate, candidate size) scoring unit for the parallel kernel.
struct CandidateJob {
  GateId gate = netlist::kNoGate;
  std::uint16_t size = 0;
};

/// Flattened gate × every-library-size job list over a gate set. The jobs for
/// gates[i] occupy [offsets[i], offsets[i] + size_count) in library size
/// order, so a score array indexed like `jobs` can be read back per gate.
struct CandidateJobs {
  std::vector<CandidateJob> jobs;
  std::vector<std::size_t> offsets;
};

CandidateJobs list_candidates(const netlist::Netlist& nl, const liberty::Library& lib,
                              std::span<const GateId> gates) {
  CandidateJobs out;
  out.offsets.reserve(gates.size());
  for (const GateId g : gates) {
    out.offsets.push_back(out.jobs.size());
    const auto& group = lib.group(nl.gate(g).cell_group);
    for (std::uint16_t s = 0; s < group.size_count(); ++s) {
      out.jobs.push_back(CandidateJob{g, s});
    }
  }
  return out;
}

/// The fast-engine side of the inner loop: either the specialized fassta
/// kernel (score_engine == "fassta", the default — per-worker Scratch, zero
/// per-candidate allocation) or any other registry engine speculating
/// through the timing::Analyzer interface.
struct InnerScorer {
  const fassta::Engine* fassta = nullptr;   ///< fast path when non-null
  timing::Analyzer* analyzer = nullptr;     ///< registry path otherwise
  /// Registry path only: the analyzer's base matches the current snapshot,
  /// so score_candidates can skip the from-scratch re-base. The sizer clears
  /// this whenever a confirmation commits (netlist + snapshot moved).
  bool base_current = false;
};

/// The parallel candidate-scoring kernel shared by the plan stage and the
/// rescue sweeps' prescoring. Fans the fast-engine evaluations across
/// options.threads workers: every worker reads the same const TimingContext
/// snapshot (through the shared Engine or Analyzer) and keeps its mutable
/// state private (a fassta Scratch, or a Speculation's overlay); slot i of
/// the result is written exactly once by whichever worker draws it, and the
/// scores themselves do not depend on evaluation order — so the returned
/// array is bitwise-identical for any thread count.
std::vector<double> score_candidates(sta::TimingContext& ctx,
                                     InnerScorer& scorer,
                                     const StatisticalSizerOptions& options,
                                     InnerScoring scoring,
                                     std::span<const CandidateJob> jobs,
                                     std::span<const sta::NodeMoments> boundary,
                                     std::span<const sta::NodeMoments> downstream) {
  const auto& nl = ctx.netlist();
  const auto& lib = ctx.library();
  const Objective& obj = options.objective;
  std::vector<double> costs(jobs.size());
  // Chunked so one scratch (and, in subcircuit mode, one window extraction
  // per job) amortizes across several candidates; chunk geometry is a pure
  // function of the job count, never of the thread count.
  constexpr std::size_t kChunk = 8;

  if (scorer.fassta == nullptr) {
    timing::Analyzer& analyzer = *scorer.analyzer;
    if (!scorer.base_current) {
      (void)analyzer.analyze(ctx);  // re-base against the frozen snapshot
      scorer.base_current = true;
    }
    const std::size_t threads =
        analyzer.capabilities().concurrent_speculations ? options.threads : 1;
    util::parallel_for(jobs.size(), kChunk, threads,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t i = begin; i < end; ++i) {
                           const auto spec = analyzer.propose(jobs[i].gate, jobs[i].size);
                           const timing::Summary& s = spec->score();
                           costs[i] = obj.cost(s.mean_ps, s.sigma_ps);
                         }
                       });
    return costs;
  }

  const fassta::Engine& engine = *scorer.fassta;
  util::parallel_for(
      jobs.size(), kChunk, options.threads,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        fassta::Engine::Scratch scratch;
        netlist::Subcircuit sc;
        GateId sc_gate = netlist::kNoGate;
        for (std::size_t i = begin; i < end; ++i) {
          const CandidateJob& job = jobs[i];
          const liberty::Cell& cell = lib.cell_for(nl.gate(job.gate).cell_group, job.size);
          if (scoring == InnerScoring::kGlobalFassta) {
            costs[i] = obj.cost(engine.run_with_candidate(job.gate, cell, scratch));
          } else {
            // A gate's jobs are contiguous, so one window extraction serves
            // every size of the gate (the window depends only on the gate).
            if (job.gate != sc_gate) {
              sc = netlist::extract_subcircuit(nl, job.gate, options.subcircuit_levels,
                                               options.subcircuit_levels);
              sc_gate = job.gate;
            }
            costs[i] = engine
                           .evaluate_candidate(sc, boundary, downstream, job.gate, cell,
                                               obj.lambda, scratch)
                           .cost;
          }
        }
      });
  return costs;
}

CircuitStats stats_of(const sta::TimingContext& ctx, const timing::Summary& s) {
  CircuitStats out;
  out.mean_ps = s.mean_ps;
  out.sigma_ps = s.sigma_ps;
  out.area_um2 = ctx.area_um2();
  return out;
}

}  // namespace

StatisticalSizerStats size_statistically(sta::TimingContext& ctx,
                                         const StatisticalSizerOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const auto& lib = ctx.library();
  const Objective& obj = options.objective;

  // Engine selection through the timing::Analyzer registry. The fassta
  // score engine keeps the specialized kernel below; everything accurate
  // goes through the confirm analyzer's transactional what-if API.
  timing::AnalyzerOptions engine_options;
  engine_options.fullssta = options.fullssta;
  engine_options.fassta = options.fassta;
  const bool fassta_scorer = options.score_engine == "fassta";
  if (!fassta_scorer && options.scoring == InnerScoring::kSubcircuit) {
    throw std::invalid_argument(
        "InnerScoring::kSubcircuit requires score_engine == \"fassta\"");
  }
  const std::unique_ptr<timing::Analyzer> confirm =
      timing::make_analyzer(options.confirm_engine, engine_options);
  if (!confirm->capabilities().what_if || !confirm->capabilities().per_node_moments) {
    throw std::invalid_argument("confirm engine \"" + options.confirm_engine +
                                "\" lacks what-if speculation or per-node moments");
  }
  const fassta::Engine engine(ctx, options.fassta);
  std::unique_ptr<timing::Analyzer> score_analyzer;
  if (!fassta_scorer) {
    score_analyzer = timing::make_analyzer(options.score_engine, engine_options);
  }
  InnerScorer scorer{fassta_scorer ? &engine : nullptr, score_analyzer.get()};

  // Yield-constraint mode: validated up front so a typo'd engine name or a
  // missing clock fails loudly instead of surfacing mid-run (or never, when
  // the loop converges before the first check).
  if (options.target_yield.has_value()) {
    if (options.yield_engine != "isle" && options.yield_engine != "mc") {
      throw std::invalid_argument("unknown yield engine \"" + options.yield_engine +
                                  "\" (known: isle, mc)");
    }
    if (options.isle.clock_period_ps <= 0.0 &&
        !ctx.constraints().clock_period_ps.has_value()) {
      throw std::invalid_argument(
          "target_yield requires a clock period (isle.clock_period_ps or an SDC "
          "create_clock constraint)");
    }
  }
  const auto estimate_yield = [&]() {
    ssta::IsleOptions isle = options.isle;
    isle.threads = options.threads;
    if (options.yield_engine == "mc") isle.proposal = ssta::IsleProposal::kNominal;
    return ssta::run_isle(ctx, isle);
  };

  StatisticalSizerStats stats;

  ctx.update();
  const timing::Summary* full = &confirm->analyze(ctx);
  stats.initial = stats_of(ctx, *full);
  double global_cost = obj.cost(full->mean_ps, full->sigma_ps);

  const auto record = [&](GateId gate, std::uint16_t from, std::uint16_t to,
                          MoveSource source) {
    if (!options.record_trajectory) return;
    stats.trajectory.push_back(ResizeEvent{stats.iterations, gate, from, to, source});
  };

  // Wave-based speculative confirmation of a fixed-order candidate list.
  // Each wave proposes a speculation per remaining candidate against the
  // committed base, scores them — in parallel when the confirm engine
  // supports concurrent speculations — then walks the fixed order and
  // commits the first improvement. The commit invalidates the wave (the
  // base moved), so the tail re-speculates against the new base: candidate
  // i is always judged against the state containing exactly the commits
  // ordered before it, which is the serial trial loop's semantics. Scores
  // are pure functions of (base, candidate), so the decisions — and every
  // downstream result — are bitwise-identical for any thread count, and
  // identical between the lazy serial walk and the prescored parallel wave.
  const bool parallel_confirm =
      confirm->capabilities().concurrent_speculations && options.threads != 1;
  // Parallel waves are windowed to a few times the worker count: a commit
  // invalidates every score after it in the wave, so an unbounded wave would
  // waste O(commits x tail) speculative scores (and hold that many overlays
  // in memory at once). The serial path scores lazily, so its window is the
  // whole tail. The window size never changes the committed sequence — each
  // candidate is judged against the state holding exactly the commits
  // ordered before it, whatever the window boundaries.
  const std::size_t wave_limit =
      parallel_confirm
          ? 4 * (options.threads == 0 ? util::ThreadPool::default_thread_count()
                                      : options.threads)
          : std::numeric_limits<std::size_t>::max();
  const auto confirm_in_order = [&](std::span<const timing::Resize> ordered,
                                    double& accepted_cost, MoveSource source) {
    std::size_t kept = 0;
    std::size_t next = 0;
    std::vector<std::unique_ptr<timing::Speculation>> specs;
    while (next < ordered.size()) {
      const std::size_t count = std::min(ordered.size() - next, wave_limit);
      specs.clear();
      specs.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const timing::Resize& c = ordered[next + i];
        if (nl.gate(c.gate).size_index == c.size) continue;  // earlier commit moved it here
        specs[i] = confirm->propose(c.gate, c.size);
      }
      if (parallel_confirm) {
        // Chunk 1: trials are coarse (a fanout-cone re-propagation each).
        util::parallel_for(count, 1, options.threads,
                           [&](std::size_t begin, std::size_t end, std::size_t) {
                             for (std::size_t i = begin; i < end; ++i) {
                               if (specs[i] != nullptr) (void)specs[i]->score();
                             }
                           });
      }
      bool committed = false;
      for (std::size_t i = 0; i < count && !committed; ++i) {
        if (specs[i] == nullptr) continue;
        const timing::Summary& s = specs[i]->score();  // cached when prescored
        const double cost = obj.cost(s.mean_ps, s.sigma_ps);
        if (cost < accepted_cost - options.min_improvement) {
          const timing::Resize& c = ordered[next + i];
          const std::uint16_t from = nl.gate(c.gate).size_index;
          specs[i]->commit();
          scorer.base_current = false;  // the snapshot moved under the scorer
          accepted_cost = cost;
          ++kept;
          record(c.gate, from, c.size, source);
          next += i + 1;
          committed = true;
        } else {
          // A rejected trial's cached score is never reread — free its
          // O(nodes) overlay now instead of holding every rejected overlay
          // until the window ends (the serial path's window is unbounded).
          specs[i].reset();
        }
      }
      if (!committed) next += count;  // whole window rejected: move on
    }
    return kept;
  };

  for (stats.iterations = 0; stats.iterations < options.max_iterations; ++stats.iterations) {
    // Cooperative control per greedy iteration (serial, on the calling
    // thread): long sizing jobs honor deadlines/cancellation between moves.
    util::checkpoint("opt/sizer/iteration");
    if (options.target_sigma_ps.has_value() && full->sigma_ps <= *options.target_sigma_ps) {
      stats.constraints_met = true;
      break;
    }
    if (options.target_yield.has_value()) {
      const ssta::IsleResult y = estimate_yield();
      stats.yield_draws += y.draws;
      if (!y.degenerate && y.yield >= *options.target_yield) {
        stats.constraints_met = true;
        break;
      }
    }

    const WnssTrace trace = trace_wnss(ctx, full->node, options.wnss);
    if (trace.path.empty()) break;

    // Downstream statistical potential per node (only the subcircuit scoring
    // mode needs it; see engine.h on window truncation).
    std::vector<sta::NodeMoments> downstream;
    if (options.scoring == InnerScoring::kSubcircuit) {
      downstream = engine.compute_downstream();
    }

    // ---- move source 1: fast-engine plan over the WNSS path ---------------
    // Every (gate, size) pair on the path is scored concurrently against the
    // frozen snapshot; the plan itself is then built serially from the score
    // array, which keeps it independent of the thread count.
    const CandidateJobs cand = list_candidates(nl, lib, trace.path);
    stats.fassta_evaluations += cand.jobs.size();
    const std::vector<double> costs = score_candidates(
        ctx, scorer, options, options.scoring, cand.jobs, full->node, downstream);

    std::vector<PlannedResize> plan;
    for (std::size_t gi = 0; gi < trace.path.size(); ++gi) {
      const GateId g = trace.path[gi];
      const auto& gate = nl.gate(g);
      const auto& group = lib.group(gate.cell_group);
      const std::size_t base = cand.offsets[gi];

      const double current_cost = costs[base + gate.size_index];
      std::uint16_t best_size = gate.size_index;
      double best_cost = current_cost;
      for (std::uint16_t s = 0; s < group.size_count(); ++s) {
        if (s == gate.size_index) continue;
        const double c = costs[base + s];
        if (c < best_cost - options.min_predicted_gain) {
          best_cost = c;
          best_size = s;
        }
      }
      if (best_size != gate.size_index) {
        plan.push_back(PlannedResize{g, best_size, current_cost - best_cost});
      }
    }

    std::size_t accepted = 0;
    double accepted_cost = global_cost;

    if (!plan.empty()) {
      // Batch commit: one multi-resize speculation, verified against the
      // accurate global objective, accepted or rolled back atomically.
      std::vector<timing::Resize> batch;
      batch.reserve(plan.size());
      for (const PlannedResize& r : plan) batch.push_back(timing::Resize{r.gate, r.new_size});
      auto batch_spec = confirm->propose_resizes(batch);
      const timing::Summary& batch_summary = batch_spec->score();
      const double batch_cost = obj.cost(batch_summary.mean_ps, batch_summary.sigma_ps);
      if (batch_cost < global_cost - options.min_improvement) {
        for (const PlannedResize& r : plan) {
          record(r.gate, nl.gate(r.gate).size_index, r.new_size, MoveSource::kPlan);
        }
        batch_spec->commit();
        scorer.base_current = false;  // the snapshot moved under the scorer
        accepted = plan.size();
        accepted_cost = batch_cost;
      } else {
        // Roll back, then retry one at a time in descending predicted gain.
        batch_spec->rollback();
        STATSIZER_DEBUG() << "iter " << stats.iterations << ": batch of " << plan.size()
                          << " rejected (" << global_cost << " -> " << batch_cost
                          << "), trying singles";
        std::sort(plan.begin(), plan.end(),
                  [](const PlannedResize& a, const PlannedResize& b) {
                    return a.predicted_gain > b.predicted_gain;
                  });
        std::vector<timing::Resize> singles;
        singles.reserve(plan.size());
        for (const PlannedResize& r : plan) {
          singles.push_back(timing::Resize{r.gate, r.new_size});
        }
        accepted += confirm_in_order(singles, accepted_cost, MoveSource::kSingle);
      }
    }

    // Bounded exact-engine sweep over a gate list: the fast engine prescores
    // every (gate, size) candidate in parallel — the same kernel as the plan
    // stage — to order the trials by predicted gain; the accurate engine then
    // confirms the candidates in that fixed order through speculative
    // what-ifs (each wave scores in parallel, commits apply serially, and a
    // trial's basis always includes exactly the moves confirmed before it).
    // The prescore only orders, never filters: engine disagreement is
    // exactly what this rescue exists for.
    const auto exact_sweep = [&](std::span<const GateId> gates, MoveSource source) {
      const CandidateJobs sweep = list_candidates(nl, lib, gates);
      stats.fassta_evaluations += sweep.jobs.size();
      const std::vector<double> prescores =
          score_candidates(ctx, scorer, options, InnerScoring::kGlobalFassta, sweep.jobs,
                           full->node, {});

      struct RescueCandidate {
        GateId gate = netlist::kNoGate;
        std::uint16_t size = 0;
        double gain = 0.0;
        std::size_t job_index = 0;  ///< deterministic tiebreak (gate order, size)
      };
      std::vector<RescueCandidate> ordered;
      for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const GateId g = gates[gi];
        const std::size_t base = sweep.offsets[gi];
        const std::uint16_t current = nl.gate(g).size_index;
        const auto& group = lib.group(nl.gate(g).cell_group);
        for (std::uint16_t s = 0; s < group.size_count(); ++s) {
          if (s == current) continue;
          ordered.push_back(
              RescueCandidate{g, s, prescores[base + current] - prescores[base + s],
                              base + s});
        }
      }
      std::sort(ordered.begin(), ordered.end(),
                [](const RescueCandidate& a, const RescueCandidate& b) {
                  if (a.gain != b.gain) return a.gain > b.gain;
                  return a.job_index < b.job_index;
                });

      std::vector<timing::Resize> trials;
      trials.reserve(ordered.size());
      for (const RescueCandidate& c : ordered) {
        trials.push_back(timing::Resize{c.gate, c.size});
      }
      const std::size_t kept = confirm_in_order(trials, accepted_cost, source);
      stats.exact_resizes += kept;
      return kept;
    };

    // ---- move source 2: exact sweep of the path prefix ---------------------
    if (accepted == 0) {
      // The fast engine's plan may have filtered out moves the accurate
      // engine would take (engine disagreement). This implements the paper's
      // "until ... no further improvement" termination on the *accurate*
      // objective, with a bounded budget.
      const std::size_t n_path =
          std::min(trace.path.size(), options.exact_fallback_gate_limit);
      accepted += exact_sweep(std::span<const GateId>(trace.path.data(), n_path),
                              MoveSource::kExactFallback);
    }

    // ---- move source 3: netlist-wide sweep of the fattest arcs -------------
    if (accepted == 0 && stats.global_sweeps < options.max_global_sweeps) {
      ++stats.global_sweeps;
      // The snapshot is always in sync here: trials are speculative (they
      // never touch the netlist) and every commit refreshed the context.
      std::vector<GateId> fat;
      for (GateId g = 0; g < nl.node_count(); ++g) {
        if (ctx.has_cell(g)) fat.push_back(g);
      }
      const auto worst_sigma = [&](GateId g) {
        double s = 0.0;
        for (std::size_t i = 0; i < nl.gate(g).fanins.size(); ++i) {
          s = std::max(s, ctx.arc_sigma_ps(g, i));
        }
        return s;
      };
      std::sort(fat.begin(), fat.end(),
                [&](GateId a, GateId b) { return worst_sigma(a) > worst_sigma(b); });
      fat.resize(std::min(fat.size(), options.global_sweep_gate_limit));
      accepted += exact_sweep(fat, MoveSource::kGlobalSweep);
      STATSIZER_DEBUG() << "iter " << stats.iterations << ": global sweep kept "
                        << accepted << " resizes";
    }

    // ---- move source 4: coordinated population bump -------------------------
    // Balanced fabrics (wide XOR trees) spread the output variance over
    // thousands of near-identical paths; no single-gate move registers, but a
    // whole-population upsize halves sigma at once (sigma ~ 1/drive). The
    // bump is one multi-resize speculation: scored without touching the
    // netlist, committed (or discarded) atomically.
    if (accepted == 0 && stats.uniform_bump_rounds < options.max_uniform_bumps) {
      ++stats.uniform_bump_rounds;
      const auto try_bump = [&](bool only_small) {
        double median_drive = 1.0;
        if (only_small) {
          std::vector<double> drives;
          for (GateId g = 0; g < nl.node_count(); ++g) {
            if (ctx.has_cell(g)) drives.push_back(ctx.drive(g));
          }
          std::sort(drives.begin(), drives.end());
          if (!drives.empty()) median_drive = drives[drives.size() / 2];
        }
        std::vector<timing::Resize> ups;
        for (GateId g = 0; g < nl.node_count(); ++g) {
          if (!ctx.has_cell(g)) continue;
          if (only_small && ctx.drive(g) > median_drive) continue;
          const auto& group = lib.group(nl.gate(g).cell_group);
          if (nl.gate(g).size_index + 1u < group.size_count()) {
            ups.push_back(
                timing::Resize{g, static_cast<std::uint16_t>(nl.gate(g).size_index + 1)});
          }
        }
        if (ups.empty()) return false;
        auto spec = confirm->propose_resizes(ups);
        const timing::Summary& s = spec->score();
        const double c = obj.cost(s.mean_ps, s.sigma_ps);
        if (c < accepted_cost - options.min_improvement) {
          spec->commit();
          scorer.base_current = false;  // the snapshot moved under the scorer
          accepted_cost = c;
          return true;
        }
        spec->rollback();
        return false;
      };
      if (try_bump(/*only_small=*/false) || try_bump(/*only_small=*/true)) {
        ++accepted;
        record(netlist::kNoGate, 0, 0, MoveSource::kUniformBump);
        STATSIZER_DEBUG() << "iter " << stats.iterations << ": uniform bump accepted";
      }
    }

    if (accepted == 0) break;  // converged: no confirmed move from any source
    stats.resizes += accepted;

    // The committed base IS the refreshed accurate analysis: every commit
    // merged its overlay into the analyzer's summary, so the back-to-back
    // update() + run_fullssta() refreshes that used to live here (and at
    // the function exit) are gone.
    full = &confirm->current();
    global_cost = obj.cost(full->mean_ps, full->sigma_ps);
    STATSIZER_DEBUG() << "iter " << stats.iterations << ": cost " << global_cost
                      << " (mu " << full->mean_ps << ", sigma " << full->sigma_ps << ")";
  }

  // Final report from the analyzer's committed base (netlist, snapshot, and
  // summary are already in their final state — nothing to recompute).
  stats.final_ = stats_of(ctx, confirm->current());
  if (options.target_sigma_ps.has_value() &&
      confirm->current().sigma_ps <= *options.target_sigma_ps) {
    stats.constraints_met = true;
  }
  if (options.target_yield.has_value()) {
    // One evaluation of the final state: the loop may have resized since its
    // last check (or broken before any), and the report should describe what
    // the caller actually gets.
    const ssta::IsleResult y = estimate_yield();
    stats.final_yield = y.yield;
    stats.final_yield_se = y.std_error;
    stats.yield_draws += y.draws;
    stats.yield_degenerate = y.degenerate;
    if (!y.degenerate && y.yield >= *options.target_yield) stats.constraints_met = true;
  }
  return stats;
}

}  // namespace statsizer::opt
