// Post-sizing area recovery (the paper's constrained mode: "delay ... is
// optimized first then area is recovered as far as possible without
// violating a delay constraint"). Gates are visited in descending area; each
// is downsized as far as the selected constraint allows.
//
// Two constraint flavours:
//  * kDeterministicArrival — the classic: keep the deterministic longest-path
//    arrival within a tolerance of its value at entry. Off-critical gates
//    shrink to minimum size; this is what produces the paper's wide-spread
//    "original" circuits.
//  * kStatisticalCost — keep the FASSTA E[max]-based objective within a
//    tolerance; appropriate after *statistical* optimization, where slack on
//    side paths is itself a statistical asset.
//
// Engine plumbing: every trial runs through the timing::Analyzer what-if API.
// The screen engine (screen_engine; defaults to "dsta" / "fassta" by
// criterion) scores each candidate downsize as a Speculation against its
// committed base — a fanout-cone re-propagation against a private overlay,
// never a netlist mutation plus full TimingContext::update(); accepted
// trials commit incrementally (the FASSTA/DSTA adapters patch the snapshot
// in place). In statistical mode the screen drifts from the accurate engine
// on reconvergent fabrics, so every kChunk accepted downsizes are
// re-verified by the confirm engine (confirm_engine, default "fullssta",
// configured with `fullssta` — the same options the caller uses to measure
// the result, so the guard and the report agree) as one atomic multi-resize
// speculation from the last checkpoint; a failed verification rolls the
// whole chunk back and stops.
//
// Concurrency (docs/ARCHITECTURE.md, "Concurrency & determinism contracts"):
// when the screen engine supports concurrent speculations, a wave of
// per-gate downsize candidates is scored across util::ThreadPool workers
// (each speculation holds a private overlay) and the descending-area order
// is then walked serially — the first acceptance commits and the tail
// re-speculates against the new base, so every trial is judged against the
// state holding exactly the commits ordered before it, which is the serial
// loop's semantics. Accepted downsizes, final sizes, and AreaRecoveryStats
// are bitwise-identical for any `threads` value, and identical to the
// pre-port serial mutate-and-rerun loop (pinned by
// tests/area_recovery_parallel_test.cpp against detail::
// recover_area_reference).
#pragma once

#include <cstddef>
#include <string>

#include "fassta/engine.h"
#include "opt/objective.h"
#include "ssta/fullssta.h"
#include "timing/analyzer.h"

namespace statsizer::opt {

enum class RecoveryCriterion {
  kDeterministicArrival,
  kStatisticalCost,
};

struct AreaRecoveryOptions {
  RecoveryCriterion criterion = RecoveryCriterion::kDeterministicArrival;
  Objective objective;           ///< used by kStatisticalCost
  /// Allowed degradation of the guarded metric, as a fraction of its value at
  /// entry (e.g. 0.003 = 0.3%).
  double tolerance = 0.003;
  /// kStatisticalCost only: additionally cap sigma at (1 + this) times its
  /// entry value. Without the cap, recovery can trade sigma for mean at
  /// constant cost (mu + lambda*sigma is blind to the split) and quietly undo
  /// a variance optimization it runs after.
  double sigma_tolerance = 0.01;
  std::size_t max_passes = 4;
  fassta::EngineOptions fassta;
  /// Options for the exact confirm engine — the *same* FullSstaOptions the
  /// caller measures the final result with, so the kChunk budgets and the
  /// reported objective use one statistical model (core::Flow plumbs its
  /// options_.fullssta here).
  ssta::FullSstaOptions fullssta;
  /// Worker threads for the speculative screening waves. 1 = serial on the
  /// calling thread; 0 = hardware concurrency. Results are bitwise-identical
  /// for any value.
  std::size_t threads = 1;
  /// Screen engine (timing::make_analyzer registry name). Empty = pick by
  /// criterion: "dsta" for kDeterministicArrival, "fassta" for
  /// kStatisticalCost — the pre-port behaviour. Must support what-if
  /// speculation; engines without concurrent_speculations screen serially.
  std::string screen_engine;
  /// Exact verification engine for kStatisticalCost (must support what-if).
  std::string confirm_engine = "fullssta";
};

struct AreaRecoveryStats {
  /// Downsize steps committed to the returned netlist (chunk rollbacks are
  /// already subtracted): always equals the per-gate entry-to-exit size-index
  /// drop summed over the netlist.
  std::size_t downsizes = 0;
  /// Screen-engine what-if trials scored (accepted + rejected).
  std::size_t screen_trials = 0;
  /// Exact chunk verifications run (kStatisticalCost only).
  std::size_t exact_verifications = 0;
  /// Chunks whose exact verification failed and were rolled back wholesale.
  std::size_t chunk_rollbacks = 0;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
  /// kStatisticalCost only (has_final_summary): the confirm engine's summary
  /// of the final committed netlist — for the default "fullssta" engine,
  /// bitwise what ssta::run_fullssta(ctx, options.fullssta) would report, so
  /// callers need no post-recovery re-analysis.
  bool has_final_summary = false;
  timing::Summary final_summary;
};

/// Recovers area in place; the netlist keeps its function and mapping.
/// Mutates size indices and the timing snapshot; not safe to call
/// concurrently on the same context. Internal screening fans out across
/// options.threads workers with thread-count-invariant results (see the
/// header comment).
AreaRecoveryStats recover_area(sta::TimingContext& ctx,
                               const AreaRecoveryOptions& options = {});

namespace detail {

/// The pre-port serial reference: per trial, mutate + full
/// TimingContext::update() + engine re-run. Kept (test-only) so
/// area_recovery_parallel_test can pin recover_area's analyzer port against
/// the original loop's decisions bitwise.
AreaRecoveryStats recover_area_reference(sta::TimingContext& ctx,
                                         const AreaRecoveryOptions& options = {});

}  // namespace detail

}  // namespace statsizer::opt
