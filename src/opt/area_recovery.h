// Post-sizing area recovery (the paper's constrained mode: "delay ... is
// optimized first then area is recovered as far as possible without
// violating a delay constraint"). Gates are visited in descending area; each
// is downsized as far as the selected constraint allows.
//
// Two constraint flavours:
//  * kDeterministicArrival — the classic: keep the deterministic longest-path
//    arrival within a tolerance of its value at entry. Off-critical gates
//    shrink to minimum size; this is what produces the paper's wide-spread
//    "original" circuits.
//  * kStatisticalCost — keep the FASSTA E[max]-based objective within a
//    tolerance; appropriate after *statistical* optimization, where slack on
//    side paths is itself a statistical asset.
#pragma once

#include <cstddef>

#include "fassta/engine.h"
#include "opt/objective.h"

namespace statsizer::opt {

enum class RecoveryCriterion {
  kDeterministicArrival,
  kStatisticalCost,
};

struct AreaRecoveryOptions {
  RecoveryCriterion criterion = RecoveryCriterion::kDeterministicArrival;
  Objective objective;           ///< used by kStatisticalCost
  /// Allowed degradation of the guarded metric, as a fraction of its value at
  /// entry (e.g. 0.003 = 0.3%).
  double tolerance = 0.003;
  /// kStatisticalCost only: additionally cap sigma at (1 + this) times its
  /// entry value. Without the cap, recovery can trade sigma for mean at
  /// constant cost (mu + lambda*sigma is blind to the split) and quietly undo
  /// a variance optimization it runs after.
  double sigma_tolerance = 0.01;
  std::size_t max_passes = 4;
  fassta::EngineOptions fassta;
};

struct AreaRecoveryStats {
  std::size_t downsizes = 0;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
};

/// Recovers area in place; the netlist keeps its function and mapping.
AreaRecoveryStats recover_area(sta::TimingContext& ctx,
                               const AreaRecoveryOptions& options = {});

}  // namespace statsizer::opt
