#include "opt/area_recovery.h"

#include <algorithm>
#include <vector>

#include "sta/dsta.h"
#include "ssta/fullssta.h"

namespace statsizer::opt {

using netlist::GateId;

AreaRecoveryStats recover_area(sta::TimingContext& ctx, const AreaRecoveryOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const fassta::Engine engine(ctx, options.fassta);
  const Objective& obj = options.objective;
  const bool statistical = options.criterion == RecoveryCriterion::kStatisticalCost;

  AreaRecoveryStats stats;
  ctx.update();
  stats.area_before_um2 = ctx.area_um2();

  // Per-trial screening metric: deterministic arrival, or the *fast* engine's
  // statistical cost with a sigma cap. The fast screen drifts from the
  // accurate engine on reconvergent fabrics, so in statistical mode every
  // chunk of accepted downsizes is re-verified against FULLSSTA and rolled
  // back wholesale if the accurate budgets are exceeded.
  double screen_sigma = 0.0;
  const auto screen = [&]() {
    if (!statistical) return run_dsta(ctx).max_arrival_ps;
    sta::NodeMoments m;
    (void)engine.run(&m);
    screen_sigma = m.sigma_ps;
    return obj.cost(m.mean_ps, m.sigma_ps);
  };
  const double screen_budget = screen() * (1.0 + options.tolerance);
  const double screen_sigma_budget = screen_sigma * (1.0 + options.sigma_tolerance);

  // Accurate budgets (statistical mode only).
  double exact_cost_budget = 0.0;
  double exact_sigma_budget = 0.0;
  if (statistical) {
    const ssta::FullSstaResult full = ssta::run_fullssta(ctx);
    exact_cost_budget = obj.cost(full.mean_ps, full.sigma_ps) * (1.0 + options.tolerance);
    exact_sigma_budget = full.sigma_ps * (1.0 + options.sigma_tolerance);
  }
  const auto exact_ok = [&]() {
    const ssta::FullSstaResult full = ssta::run_fullssta(ctx);
    return obj.cost(full.mean_ps, full.sigma_ps) <= exact_cost_budget &&
           full.sigma_ps <= exact_sigma_budget;
  };

  constexpr std::size_t kChunk = 12;
  auto checkpoint = nl.sizes();
  std::size_t since_checkpoint = 0;
  bool stopped = false;

  for (std::size_t pass = 0; pass < options.max_passes && !stopped; ++pass) {
    // Largest cells first: most area to win back.
    std::vector<GateId> order;
    for (GateId id = 0; id < nl.node_count(); ++id) {
      if (ctx.has_cell(id) && nl.gate(id).size_index > 0) order.push_back(id);
    }
    std::sort(order.begin(), order.end(), [&](GateId a, GateId b) {
      return ctx.cell(a).area_um2 > ctx.cell(b).area_um2;
    });

    std::size_t changed = 0;
    for (const GateId g : order) {
      auto& gate = nl.gate(g);
      while (gate.size_index > 0) {
        const std::uint16_t keep = gate.size_index;
        gate.size_index = static_cast<std::uint16_t>(keep - 1);
        ctx.update();
        const double cost = screen();
        const bool ok = cost <= screen_budget &&
                        (!statistical || screen_sigma <= screen_sigma_budget);
        if (!ok) {
          gate.size_index = keep;
          ctx.update();
          break;
        }
        ++stats.downsizes;
        ++changed;
        if (statistical && ++since_checkpoint >= kChunk) {
          if (exact_ok()) {
            checkpoint = nl.sizes();
          } else {
            nl.set_sizes(checkpoint);
            ctx.update();
            stats.downsizes -= since_checkpoint;
            stopped = true;
          }
          since_checkpoint = 0;
          if (stopped) break;
        }
      }
      if (stopped) break;
    }
    if (changed == 0) break;
  }

  // Verify the trailing partial chunk.
  if (statistical && since_checkpoint > 0 && !stopped) {
    if (!exact_ok()) {
      nl.set_sizes(checkpoint);
      ctx.update();
      stats.downsizes -= since_checkpoint;
    }
  }

  ctx.update();
  stats.area_after_um2 = ctx.area_um2();
  return stats;
}

}  // namespace statsizer::opt
