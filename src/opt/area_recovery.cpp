#include "opt/area_recovery.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sta/dsta.h"
#include "ssta/fullssta.h"
#include "util/thread_pool.h"

namespace statsizer::opt {

using netlist::GateId;

namespace {

/// Accepted downsizes in statistical mode accumulate between exact
/// verifications; every kChunk the confirm engine re-checks the budgets.
constexpr std::size_t kChunk = 12;

std::string screen_engine_name(const AreaRecoveryOptions& options, bool statistical) {
  if (!options.screen_engine.empty()) return options.screen_engine;
  return statistical ? "fassta" : "dsta";
}

/// Gates with shrink headroom, largest cells first: most area to win back.
std::vector<GateId> recovery_order(const sta::TimingContext& ctx) {
  const auto& nl = ctx.netlist();
  std::vector<GateId> order;
  for (GateId id = 0; id < nl.node_count(); ++id) {
    if (ctx.has_cell(id) && nl.gate(id).size_index > 0) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](GateId a, GateId b) {
    return ctx.cell(a).area_um2 > ctx.cell(b).area_um2;
  });
  return order;
}

}  // namespace

AreaRecoveryStats recover_area(sta::TimingContext& ctx, const AreaRecoveryOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const Objective& obj = options.objective;
  const bool statistical = options.criterion == RecoveryCriterion::kStatisticalCost;

  timing::AnalyzerOptions engine_options;
  engine_options.fullssta = options.fullssta;
  engine_options.fassta = options.fassta;
  const auto screen = timing::make_analyzer(screen_engine_name(options, statistical),
                                            engine_options);
  if (!screen->capabilities().what_if) {
    throw std::invalid_argument("recover_area: screen engine \"" +
                                std::string(screen->name()) + "\" lacks what-if speculation");
  }

  AreaRecoveryStats stats;
  ctx.update();
  stats.area_before_um2 = ctx.area_um2();

  // Per-trial screening metric: deterministic arrival, or the *fast* engine's
  // statistical cost with a sigma cap. The fast screen drifts from the
  // accurate engine on reconvergent fabrics, so in statistical mode every
  // chunk of accepted downsizes is re-verified against the confirm engine
  // and rolled back wholesale if the accurate budgets are exceeded.
  const auto screen_cost = [&](const timing::Summary& s) {
    return statistical ? obj.cost(s.mean_ps, s.sigma_ps) : s.mean_ps;
  };
  const timing::Summary& entry = screen->analyze(ctx);
  const double screen_budget = screen_cost(entry) * (1.0 + options.tolerance);
  const double screen_sigma_budget = entry.sigma_ps * (1.0 + options.sigma_tolerance);

  // Accurate budgets (statistical mode only), measured with the same
  // FullSstaOptions the caller reports the final result with — guard and
  // report share one statistical model.
  std::unique_ptr<timing::Analyzer> confirm;
  double exact_cost_budget = 0.0;
  double exact_sigma_budget = 0.0;
  if (statistical) {
    confirm = timing::make_analyzer(options.confirm_engine, engine_options);
    if (!confirm->capabilities().what_if) {
      throw std::invalid_argument("recover_area: confirm engine \"" +
                                  options.confirm_engine + "\" lacks what-if speculation");
    }
    const timing::Summary& full = confirm->analyze(ctx);
    exact_cost_budget = obj.cost(full.mean_ps, full.sigma_ps) * (1.0 + options.tolerance);
    exact_sigma_budget = full.sigma_ps * (1.0 + options.sigma_tolerance);
  }

  // Downsizes accepted since the last checkpoint live in the netlist (and in
  // the screen engine's committed base) but are not yet exact-verified; the
  // confirm analyzer's base still holds the checkpoint state. `pending`
  // remembers each touched gate's checkpoint size so a failed verification
  // can restore the checkpoint without an O(nodes) sizes snapshot.
  struct PendingGate {
    GateId gate = netlist::kNoGate;
    std::uint16_t checkpoint_size = 0;
  };
  std::vector<PendingGate> pending;
  std::size_t since_checkpoint = 0;  // accepted downsize *steps* since the checkpoint
  const auto note_accept = [&](GateId g, std::uint16_t from) {
    for (const PendingGate& p : pending) {
      if (p.gate == g) return;  // keep the first (= checkpoint) size
    }
    pending.push_back(PendingGate{g, from});
  };

  // The kChunk exact re-verification: one atomic multi-resize speculation
  // from the checkpoint base (the confirm engine re-propagates only the
  // pending resizes' fanout cone — the pre-port loop re-ran the full engine
  // here). On success the commit makes the current state the new checkpoint;
  // on failure the speculation's rollback is free and the netlist's pending
  // size indices are restored in place of the old wholesale
  // set_sizes(checkpoint) + update().
  const auto verify_chunk = [&]() -> bool {
    ++stats.exact_verifications;
    std::vector<timing::Resize> batch;
    batch.reserve(pending.size());
    for (const PendingGate& p : pending) {
      batch.push_back(timing::Resize{p.gate, nl.gate(p.gate).size_index});
    }
    auto spec = confirm->propose_resizes(batch);
    const timing::Summary& s = spec->score();
    const bool ok = obj.cost(s.mean_ps, s.sigma_ps) <= exact_cost_budget &&
                    s.sigma_ps <= exact_sigma_budget;
    if (ok) {
      // The netlist already holds the batch sizes and the screen commits
      // kept the snapshot bitwise in sync, so this commit re-patches the
      // cone with identical values and advances the confirm engine's base
      // to the new checkpoint — no O(E) snapshot rebuild.
      spec->commit();
    } else {
      spec->rollback();
      ++stats.chunk_rollbacks;
      stats.downsizes -= since_checkpoint;
      for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        nl.gate(it->gate).size_index = it->checkpoint_size;
      }
      ctx.update();  // re-sync the snapshot with the restored checkpoint sizes
    }
    pending.clear();
    since_checkpoint = 0;
    return ok;
  };

  // Wave geometry: with a concurrent screen engine, up to a few times the
  // worker count of per-gate candidates are speculatively prescored at once;
  // a commit invalidates the tail (the base moved), so wider waves would
  // waste speculative scores during accept-heavy stretches. The serial path
  // scores one trial at a time — zero waste, and the wave walk below makes
  // the committed sequence independent of the window size, so results are
  // bitwise-identical for any thread count.
  const bool parallel_screen =
      screen->capabilities().concurrent_speculations && options.threads != 1;
  const std::size_t wave_limit =
      parallel_screen
          ? 4 * (options.threads == 0 ? util::ThreadPool::default_thread_count()
                                      : options.threads)
          : std::size_t{1};

  bool stopped = false;
  for (std::size_t pass = 0; pass < options.max_passes && !stopped; ++pass) {
    const std::vector<GateId> order = recovery_order(ctx);
    std::size_t changed = 0;
    // Rollback accounting: the slice of `changed` that is not yet
    // exact-verified, so a chunk rollback can retract exactly this pass's
    // share and `changed` keeps matching the committed netlist.
    std::size_t changed_since_checkpoint = 0;

    // The wave walk. Serial semantics being reproduced: visit gates in
    // descending-area order; downsize each one step at a time until a trial
    // violates a budget (the gate is then done for this pass) or size 0.
    // Every trial is judged against the committed base holding exactly the
    // accepts ordered before it. A wave proposes the next candidate of each
    // gate in the window; the walk scans the fixed order, rejections are
    // final (their basis matched), and the first acceptance commits and
    // invalidates the tail — the next wave restarts at the accepting gate
    // (its next downsize step is the next serial trial).
    std::size_t pos = 0;
    std::vector<std::unique_ptr<timing::Speculation>> wave;
    while (pos < order.size() && !stopped) {
      const std::size_t count = std::min(order.size() - pos, wave_limit);
      wave.clear();
      wave.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint16_t cur = nl.gate(order[pos + i]).size_index;
        if (cur == 0) continue;  // defensive: nothing left to shrink
        wave[i] = screen->propose(order[pos + i], static_cast<std::uint16_t>(cur - 1));
      }
      if (parallel_screen) {
        // Chunk 1: trials are coarse (a fanout-cone re-propagation each).
        util::parallel_for(count, 1, options.threads,
                           [&](std::size_t begin, std::size_t end, std::size_t) {
                             for (std::size_t i = begin; i < end; ++i) {
                               if (wave[i] != nullptr) (void)wave[i]->score();
                             }
                           });
      }
      std::size_t advanced = count;  // whole window decided, no acceptance
      for (std::size_t i = 0; i < count; ++i) {
        if (wave[i] == nullptr) continue;
        ++stats.screen_trials;
        const timing::Summary& s = wave[i]->score();  // cached when prescored
        const bool ok = screen_cost(s) <= screen_budget &&
                        (!statistical || s.sigma_ps <= screen_sigma_budget);
        if (!ok) {
          // Rejected: the gate is done for this pass. Free the overlay now
          // instead of holding every rejected one until the window ends.
          wave[i].reset();
          continue;
        }
        const GateId g = order[pos + i];
        // Checkpoint bookkeeping is only consumed by the statistical
        // chunk verification; the deterministic criterion skips its cost.
        if (statistical) {
          note_accept(g, nl.gate(g).size_index);
          ++changed_since_checkpoint;
          ++since_checkpoint;
        }
        wave[i]->commit();  // incremental: patches the snapshot, no update()
        ++stats.downsizes;
        ++changed;
        // Re-wave at this gate while it has headroom (the serial loop keeps
        // downsizing the same gate until a rejection).
        advanced = nl.gate(g).size_index > 0 ? i : i + 1;
        if (statistical && since_checkpoint >= kChunk) {
          if (verify_chunk()) {
            changed_since_checkpoint = 0;
          } else {
            changed -= changed_since_checkpoint;
            changed_since_checkpoint = 0;
            stopped = true;
          }
        }
        break;  // the commit invalidated the remaining wave
      }
      pos += advanced;
    }
    if (changed == 0) break;
  }

  // Verify the trailing partial chunk.
  if (statistical && since_checkpoint > 0 && !stopped) {
    (void)verify_chunk();
  }

  ctx.update();
  stats.area_after_um2 = ctx.area_um2();
  if (statistical) {
    stats.has_final_summary = true;
    stats.final_summary = confirm->current();
  }
  return stats;
}

namespace detail {

AreaRecoveryStats recover_area_reference(sta::TimingContext& ctx,
                                         const AreaRecoveryOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const fassta::Engine engine(ctx, options.fassta);
  const Objective& obj = options.objective;
  const bool statistical = options.criterion == RecoveryCriterion::kStatisticalCost;

  AreaRecoveryStats stats;
  ctx.update();
  stats.area_before_um2 = ctx.area_um2();

  double screen_sigma = 0.0;
  const auto screen = [&]() {
    if (!statistical) return run_dsta(ctx).max_arrival_ps;
    sta::NodeMoments m;
    (void)engine.run(&m);
    screen_sigma = m.sigma_ps;
    return obj.cost(m.mean_ps, m.sigma_ps);
  };
  const double screen_budget = screen() * (1.0 + options.tolerance);
  const double screen_sigma_budget = screen_sigma * (1.0 + options.sigma_tolerance);

  double exact_cost_budget = 0.0;
  double exact_sigma_budget = 0.0;
  if (statistical) {
    const ssta::FullSstaResult full = ssta::run_fullssta(ctx, options.fullssta);
    exact_cost_budget = obj.cost(full.mean_ps, full.sigma_ps) * (1.0 + options.tolerance);
    exact_sigma_budget = full.sigma_ps * (1.0 + options.sigma_tolerance);
  }
  const auto exact_ok = [&]() {
    const ssta::FullSstaResult full = ssta::run_fullssta(ctx, options.fullssta);
    return obj.cost(full.mean_ps, full.sigma_ps) <= exact_cost_budget &&
           full.sigma_ps <= exact_sigma_budget;
  };

  auto checkpoint = nl.sizes();
  std::size_t since_checkpoint = 0;
  bool stopped = false;

  for (std::size_t pass = 0; pass < options.max_passes && !stopped; ++pass) {
    const std::vector<GateId> order = recovery_order(ctx);

    std::size_t changed = 0;
    for (const GateId g : order) {
      auto& gate = nl.gate(g);
      while (gate.size_index > 0) {
        const std::uint16_t keep = gate.size_index;
        gate.size_index = static_cast<std::uint16_t>(keep - 1);
        ctx.update();
        ++stats.screen_trials;
        const double cost = screen();
        const bool ok = cost <= screen_budget &&
                        (!statistical || screen_sigma <= screen_sigma_budget);
        if (!ok) {
          gate.size_index = keep;
          ctx.update();
          break;
        }
        ++stats.downsizes;
        ++changed;
        if (statistical && ++since_checkpoint >= kChunk) {
          ++stats.exact_verifications;
          if (exact_ok()) {
            checkpoint = nl.sizes();
          } else {
            nl.set_sizes(checkpoint);
            ctx.update();
            stats.downsizes -= since_checkpoint;
            ++stats.chunk_rollbacks;
            stopped = true;
          }
          since_checkpoint = 0;
          if (stopped) break;
        }
      }
      if (stopped) break;
    }
    if (changed == 0) break;
  }

  if (statistical && since_checkpoint > 0 && !stopped) {
    ++stats.exact_verifications;
    if (!exact_ok()) {
      nl.set_sizes(checkpoint);
      ctx.update();
      stats.downsizes -= since_checkpoint;
      ++stats.chunk_rollbacks;
    }
  }

  ctx.update();
  stats.area_after_um2 = ctx.area_um2();
  return stats;
}

}  // namespace detail

}  // namespace statsizer::opt
