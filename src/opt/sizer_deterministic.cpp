#include "opt/sizer_deterministic.h"

#include <algorithm>
#include <cmath>

#include "sta/dsta.h"

namespace statsizer::opt {

using netlist::GateId;

namespace {

/// Local estimate of the arrival at @p g if it were bound to @p candidate:
/// the drivers' arrivals are first shifted by the delay change their new load
/// causes (worst arc), then g's own arcs are re-evaluated with the candidate
/// cell. A standard TILOS-style gain model: exact for the stage, ignores
/// slew ripple beyond it.
double local_arrival_with(const sta::TimingContext& ctx, const sta::DstaResult& dsta,
                          GateId g, const liberty::Cell& candidate) {
  const auto& nl = ctx.netlist();
  const auto& gate = nl.gate(g);

  double arrival = 0.0;
  for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
    const GateId driver = gate.fanins[i];
    double driver_arrival = dsta.arrival_ps[driver];
    if (ctx.has_cell(driver)) {
      const double new_load = ctx.load_ff_with_resize(driver, g, candidate);
      if (new_load != ctx.load_ff(driver)) {
        // Worst-arc delay shift of the driver under the new load.
        double old_delay = 0.0;
        double new_delay = 0.0;
        const liberty::Cell& driver_cell = ctx.cell(driver);
        for (std::size_t j = 0; j < nl.gate(driver).fanins.size(); ++j) {
          old_delay = std::max(old_delay, ctx.arc_delay_ps(driver, j));
          new_delay = std::max(new_delay, ctx.arc_delay_with(driver, j, driver_cell, new_load));
        }
        driver_arrival += new_delay - old_delay;
      }
    }
    arrival = std::max(arrival,
                       driver_arrival + ctx.arc_delay_with(g, i, candidate, ctx.load_ff(g)));
  }
  return arrival;
}

}  // namespace

DeterministicSizerStats size_for_mean_delay(sta::TimingContext& ctx,
                                            const DeterministicSizerOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const auto& lib = ctx.library();
  DeterministicSizerStats stats;

  ctx.update();
  sta::DstaResult dsta = run_dsta(ctx);
  stats.initial_arrival_ps = dsta.max_arrival_ps;
  double best_arrival = dsta.max_arrival_ps;
  auto best_sizes = nl.sizes();

  for (stats.passes = 0; stats.passes < options.max_passes; ++stats.passes) {
    bool changed = false;
    for (const GateId g : dsta.critical_path) {
      if (!ctx.has_cell(g)) continue;
      const auto& gate = nl.gate(g);
      const auto& group = lib.group(gate.cell_group);
      const double current_arrival = local_arrival_with(ctx, dsta, g, ctx.cell(g));

      std::uint16_t best_size = gate.size_index;
      double best_local = current_arrival;
      for (std::uint16_t s = 0; s < group.size_count(); ++s) {
        if (s == gate.size_index) continue;
        const liberty::Cell& candidate = lib.cell_for(gate.cell_group, s);
        const double a = local_arrival_with(ctx, dsta, g, candidate);
        if (a < best_local - options.min_gain_ps) {
          best_local = a;
          best_size = s;
        }
      }
      if (best_size != gate.size_index) {
        nl.gate(g).size_index = best_size;
        ++stats.resizes;
        changed = true;
      }
    }
    if (!changed) break;

    ctx.update();
    dsta = run_dsta(ctx);
    if (dsta.max_arrival_ps < best_arrival - options.min_gain_ps) {
      best_arrival = dsta.max_arrival_ps;
      best_sizes = nl.sizes();
    } else {
      // Batch overshoot (e.g. two neighbours both upsized): restore the best
      // known state and stop.
      nl.set_sizes(best_sizes);
      ctx.update();
      dsta = run_dsta(ctx);
      break;
    }
  }

  stats.final_arrival_ps = dsta.max_arrival_ps;
  return stats;
}

}  // namespace statsizer::opt
