#include "opt/initial_sizing.h"

#include <cmath>

namespace statsizer::opt {

using netlist::GateId;

InitialSizingStats apply_initial_sizing(sta::TimingContext& ctx,
                                        const InitialSizingOptions& options) {
  auto& nl = ctx.mutable_netlist();
  const auto& lib = ctx.library();
  InitialSizingStats stats;

  for (std::size_t pass = 0; pass < options.passes; ++pass) {
    ctx.update();
    std::size_t changed = 0;

    // Reverse topological order: consumers get their drives first, so loads
    // seen by producers are one pass fresher.
    const auto& order = ctx.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const GateId id = *it;
      if (!ctx.has_cell(id)) continue;
      auto& gate = nl.gate(id);
      const auto& group = lib.group(gate.cell_group);

      // Input cap per unit drive for this family (drive-normalized).
      const liberty::Cell& smallest = lib.cell_for(gate.cell_group, 0);
      const double cin_per_drive = smallest.input_cap_ff(0) / smallest.drive;
      if (cin_per_drive <= 0.0) continue;

      const double wanted_drive =
          ctx.load_ff(id) / (options.target_electrical_fanout * cin_per_drive);

      // Smallest size whose drive reaches the target (clamped to the family).
      std::uint16_t pick = 0;
      for (std::uint16_t s = 0; s < group.size_count(); ++s) {
        pick = s;
        if (lib.cell_for(gate.cell_group, s).drive >= wanted_drive) break;
      }
      if (pick != gate.size_index) {
        gate.size_index = pick;
        ++changed;
      }
    }
    stats.changed_gates += changed;
    ++stats.passes_run;
    if (changed == 0) break;
  }
  ctx.update();
  return stats;
}

}  // namespace statsizer::opt
