// Gain-based initial sizing: choose each gate's drive so its electrical
// fanout (load / input capacitance per drive) lands near a target — the
// load-balancing any synthesis tool performs before handing a netlist to
// timing optimization. The paper's circuits come out of Design Compiler
// already sized this way; starting the sizers from all-minimum cells instead
// puts every net hopelessly overloaded and makes sizing moves non-local.
//
// Sizes depend on loads and loads on sizes, so the assignment iterates a few
// reverse-topological passes; it converges quickly because drive choices are
// monotone in load.
#pragma once

#include <cstddef>

#include "sta/graph.h"

namespace statsizer::opt {

struct InitialSizingOptions {
  double target_electrical_fanout = 4.0;  ///< classic logical-effort sweet spot
  std::size_t passes = 4;
};

struct InitialSizingStats {
  std::size_t passes_run = 0;
  std::size_t changed_gates = 0;
};

/// Assigns size indices in place and updates the context.
InitialSizingStats apply_initial_sizing(sta::TimingContext& ctx,
                                        const InitialSizingOptions& options = {});

}  // namespace statsizer::opt
