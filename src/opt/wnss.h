// Worst Negative Statistical Slack (WNSS) path tracing — paper section 4.4.
//
// Deterministic optimizers walk the worst-slack path by picking, at each
// gate, the input with the latest arrival. With random variables that rule
// breaks: the statistical max is non-linear, *every* input contributes to the
// output variance, and an input with a lower mean but fat sigma can dominate.
// The paper's procedure, reproduced here:
//
//   at each gate, compare inputs pairwise (through their arcs):
//     1. if dominance (eq. 5/6) holds at |alpha| >= 2.6, the higher-mean
//        input wins outright;
//     2. otherwise compare dVar(max)/dmu via a forward finite difference with
//        h ~ 1% of the mean and a coupled sigma step g = c*h (mean and sigma
//        along a path move together; c is the variation model's
//        mean-to-sigma coefficient).
//   The tournament winner is the "statistically critical" input; walk it
//   back to a primary input. The same tournament over the primary outputs
//   picks the starting point.
#pragma once

#include <span>
#include <vector>

#include "sta/graph.h"

namespace statsizer::opt {

struct WnssOptions {
  double dominance_threshold = 2.6;
  double fd_step_fraction = 0.01;  ///< h as a fraction of the mean (paper: ~1%)
  bool use_fast_clark = true;      ///< quadratic-erf Clark in the sensitivities
};

struct WnssTrace {
  /// Gates on the WNSS path, primary-input side first, critical PO driver
  /// last. Contains only sizable gates (no PIs/constants).
  std::vector<netlist::GateId> path;
  /// Driver of the output that dominates the circuit's variance.
  netlist::GateId critical_output = netlist::kNoGate;
};

/// Traces the WNSS path using FULLSSTA's per-node arrival moments
/// (@p moments indexed by GateId).
[[nodiscard]] WnssTrace trace_wnss(const sta::TimingContext& ctx,
                                   std::span<const sta::NodeMoments> moments,
                                   const WnssOptions& options = {});

/// The pairwise comparison at the heart of the tracer, exposed for tests and
/// the Fig. 3 reproduction: returns true if input A (moments through its arc)
/// is more responsible for the variance of max(A, B) than input B.
/// @p c_a / @p c_b are the mean-to-sigma coupling coefficients for each side.
[[nodiscard]] bool more_responsible(const sta::NodeMoments& a, const sta::NodeMoments& b,
                                    double c_a, double c_b, const WnssOptions& options = {});

}  // namespace statsizer::opt
