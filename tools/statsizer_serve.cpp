// statsizer_serve — the timing-as-a-service front end (serve::Server) as a
// process. Speaks newline-JSON on stdin/stdout by default, or accepts TCP
// connections with --socket PORT (POSIX only; thread per connection, each
// with its own protocol loop over the shared server).
//
//   ./statsizer_serve --threads 4 <<'EOF'
//   {"id":1,"op":"load","workload":"c432"}
//   {"id":2,"op":"whatif","gate":"g100","size":2}
//   {"id":3,"op":"quit"}
//   EOF
//
// Fault injection (--fault SPEC, repeatable) is the deterministic test
// harness for the serving stack: every isolation / deadline / shedding /
// retry path can be forced on demand. SPEC syntax (util::parse_fault_rule):
//   site=<name|prefix*>[,scope=<N|*>][,hit=<N|0>][,p=<prob>]
//       [,delay_ms=<N>][,code=<status code>][,msg=<text>][,delay_only]
// e.g. --fault 'site=serve/job/start,scope=2' fails request #2's first
// checkpoint with kUnavailable.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/fault.h"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>  // libstdc++: iostream over a connected fd

#include <thread>
#endif

namespace {

void usage() {
  std::cerr
      << "usage: statsizer_serve [options]\n"
         "  --threads N          worker threads (default 1; 0 = hardware)\n"
         "  --queue-depth N      admission: max pending requests (default 64)\n"
         "  --max-inflight-mb N  admission: max summed request cost (default off)\n"
         "  --retry-after-ms N   backoff hint on shed requests (default 10)\n"
         "  --engine NAME        what-if engine (default fullssta)\n"
         "  --fault SPEC         deterministic fault rule (repeatable)\n"
         "  --seed N             fault-plan seed (default 1)\n"
#ifdef __unix__
         "  --socket PORT        serve TCP instead of stdin/stdout\n"
#endif
         "  --help               this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using statsizer::serve::Server;
  using statsizer::serve::ServerOptions;

  ServerOptions options;
  options.limits.max_queue_depth = 64;
  options.faults.seed = 1;
  int port = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "statsizer_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue-depth") {
      options.limits.max_queue_depth =
          static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-inflight-mb") {
      options.limits.max_inflight_bytes =
          static_cast<std::size_t>(std::strtoul(next(), nullptr, 10)) << 20;
    } else if (arg == "--retry-after-ms") {
      options.limits.retry_after =
          std::chrono::milliseconds(std::strtol(next(), nullptr, 10));
    } else if (arg == "--engine") {
      options.session.engine = next();
    } else if (arg == "--fault") {
      auto rule = statsizer::util::parse_fault_rule(next());
      if (!rule.ok()) {
        std::cerr << "statsizer_serve: bad --fault: " << rule.status().message() << "\n";
        return 2;
      }
      options.faults.rules.push_back(std::move(rule.value()));
    } else if (arg == "--seed") {
      options.faults.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--socket") {
      port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "statsizer_serve: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  Server server(options);

  if (port < 0) {
    (void)server.run(std::cin, std::cout);
    return 0;
  }

#ifdef __unix__
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "statsizer_serve: socket() failed\n";
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    std::cerr << "statsizer_serve: bind/listen on 127.0.0.1:" << port << " failed\n";
    return 1;
  }
  std::cerr << "statsizer_serve: listening on 127.0.0.1:" << port << "\n";
  // Thread per connection; each runs its own protocol loop against the
  // shared Server (sessions and the job system are shared across clients).
  // A client's quit op ends only its own connection.
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([fd, &server] {
      __gnu_cxx::stdio_filebuf<char> inbuf(fd, std::ios::in);
      __gnu_cxx::stdio_filebuf<char> outbuf(::dup(fd), std::ios::out);
      std::istream in(&inbuf);
      std::ostream out(&outbuf);
      (void)server.run(in, out);
    });
  }
  for (std::thread& t : connections) t.join();
  ::close(listener);
  return 0;
#else
  std::cerr << "statsizer_serve: --socket is not supported on this platform\n";
  return 2;
#endif
}
